"""Resident StreamEngine: lifecycle state machine, ticker, fault injection.

ISSUE 10 acceptance: the tenant lifecycle
(provisioning → active → quarantined → lifted → retired) is a typed state
machine; the background ticker drains concurrent submissions to the same
byte-identical outcomes as drive-by ticking; and the PR 4/5 consistency
claims survive ≥20 randomized fault-injection iterations per scenario —
worker death mid-superstep, tenant failure mid-tick, quota quarantine.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.engine import PROCESS, WorkerPool, derive_seed
from repro.errors import (
    GraphError,
    LifecycleError,
    QuotaExceededError,
    WorkerCrashError,
)
from repro.core.partitioning import random_edge_partition
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream import checkpoint
from repro.stream.engine import StreamEngine, TenantState
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import multi_tenant_traces, uniform_churn_trace


def _fleet(seed=5):
    return multi_tenant_traces(
        num_tenants=3,
        num_vertices=64,
        num_batches=3,
        batch_size=30,
        seed=seed,
    )


def _tenant_fingerprint(service):
    return (
        tuple(tuple(sorted(out)) for out in service.orientation._out),
        tuple(service.coloring._colors),
        service.orientation.flips,
        service.orientation.rebuilds,
        service.cluster.stats.num_rounds,
    )


def _summary_rows(summary):
    return [tuple(sorted(report.as_dict().items())) for report in summary.reports]


def _quota_for(initial, seed, headroom=20):
    probe = StreamingService(initial, seed=seed)
    peak = probe.cluster.stats.peak_global_memory_words
    in_use = probe.cluster.global_memory_in_use()
    probe.close()
    return max(peak, in_use) + headroom


def _absent_edge_inserts(initial, count):
    ops = []
    for u in range(initial.num_vertices):
        for v in range(u + 1, initial.num_vertices):
            if not initial.has_edge(u, v):
                ops.append(("+", u, v))
                if len(ops) == count:
                    return UpdateBatch.from_ops(ops)
    raise AssertionError("graph too dense")


class TestLifecycleStateMachine:
    def test_happy_path_walks_every_live_state(self):
        """active → quarantined → lifted → active → retired, each edge typed
        and observable through tenant_state()."""
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        quota = _quota_for(initial, derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            assert engine.tenant_state("t") is TenantState.ACTIVE
            engine.submit("t", _absent_edge_inserts(initial, 30))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            assert engine.tenant_state("t") is TenantState.QUARANTINED
            engine.lift_quarantine("t", new_quota=quota + 1000)
            assert engine.tenant_state("t") is TenantState.LIFTED
            engine.run_until_drained(max_ticks=5)
            assert engine.tenant_state("t") is TenantState.ACTIVE
            engine.retire_tenant("t")
            assert engine.tenant_state("t") is TenantState.RETIRED

    def test_retiring_a_quarantined_tenant_is_allowed(self):
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        quota = _quota_for(initial, derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            engine.submit("t", _absent_edge_inserts(initial, 30))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            summary = engine.retire_tenant("t")
            assert engine.tenant_state("t") is TenantState.RETIRED
            assert summary.num_batches == 0  # the breaching batch never landed
            assert engine.pending("t") == 0  # retirement drops the queue
            assert engine.quarantined() == {}  # retired ≠ quarantined

    def test_lifting_a_retired_tenant_raises_a_typed_error(self):
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", union_of_random_forests(32, arboricity=2, seed=1))
            engine.retire_tenant("t")
            with pytest.raises(LifecycleError) as excinfo:
                engine.lift_quarantine("t")
            assert excinfo.value.tenant == "t"
            assert excinfo.value.from_state == "retired"
            assert excinfo.value.to_state == "lifted"
            assert "retired -> lifted" in str(excinfo.value)

    def test_retiring_twice_raises_a_typed_error(self):
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", union_of_random_forests(32, arboricity=2, seed=1))
            engine.retire_tenant("t")
            with pytest.raises(LifecycleError, match="retired -> retired"):
                engine.retire_tenant("t")

    def test_retired_tenants_reject_submissions_and_service_access(self):
        traces = _fleet()
        with StreamEngine(seed=9) as engine:
            for trace in traces:
                engine.add_tenant(trace.name, trace.initial)
                engine.submit_all(trace.name, trace.batches)
            engine.run_until_drained()
            live_rows = _summary_rows(engine.tenant_summary(traces[0].name))
            final = engine.retire_tenant(traces[0].name)
            # the frozen summary is the pre-retirement one
            assert _summary_rows(final) == live_rows
            assert _summary_rows(engine.tenant_summary(traces[0].name)) == live_rows
            with pytest.raises(GraphError, match="cannot submit"):
                engine.submit(traces[0].name, UpdateBatch.from_ops([("+", 0, 1)]))
            with pytest.raises(GraphError, match="service is gone"):
                engine.tenant_service(traces[0].name)
            # the name stays registered: no reuse, stable seed derivation
            with pytest.raises(GraphError, match="already registered"):
                engine.add_tenant(traces[0].name, traces[0].initial)
            assert traces[0].name in engine.tenant_names()

    def test_lifecycle_history_is_reconstructible_from_the_obs_layer(self):
        """Every transition emits a per-state counter and a zero-width span
        carrying the edge, so a fleet's lifecycle history survives in the
        trace alone (the PR 7 contract extended to PR 10)."""
        from repro.obs import Tracer

        initial = union_of_random_forests(48, arboricity=1, seed=3)
        quota = _quota_for(initial, derive_seed(5, 0))
        tracer = Tracer()
        with StreamEngine(seed=5, tracer=tracer) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            engine.submit("t", _absent_edge_inserts(initial, 30))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            engine.lift_quarantine("t", new_quota=quota + 1000)
            engine.run_until_drained(max_ticks=5)
            engine.retire_tenant("t")
        counters = tracer.metrics.snapshot()["counters"]
        for state in ("provisioning", "active", "quarantined", "lifted", "retired"):
            assert counters[f"engine.lifecycle.{state}"] >= 1
        assert counters["engine.tenants_retired"] == 1
        edges = [
            record.args["transition"]
            for record in tracer.records
            if record.name == "lifecycle"
        ]
        assert "active -> quarantined" in edges
        assert "quarantined -> lifted" in edges
        assert "lifted -> active" in edges
        assert "active -> retired" in edges

    def test_retirement_spares_siblings_mid_drain(self):
        """Retire one tenant between ticks; the survivors drain to the same
        outcomes as standalone services."""
        traces = _fleet()
        with StreamEngine(seed=9) as engine:
            for trace in traces:
                engine.add_tenant(trace.name, trace.initial)
                engine.submit_all(trace.name, trace.batches)
            engine.tick()
            engine.retire_tenant(traces[1].name)
            engine.run_until_drained()
            engine.verify()
            for index in (0, 2):
                standalone = StreamingService(
                    traces[index].initial, seed=derive_seed(9, index)
                )
                standalone.apply_all(traces[index].batches)
                assert _tenant_fingerprint(
                    engine.tenant_service(traces[index].name)
                ) == _tenant_fingerprint(standalone)
                standalone.close()


class TestResidentTicker:
    def test_resident_drain_matches_drive_by_ticking(self):
        """All batches submitted before start(): the ticker must produce the
        exact tick sequence — full engine fingerprint equality."""
        traces = _fleet()
        with StreamEngine(seed=9) as reference:
            for trace in traces:
                reference.add_tenant(trace.name, trace.initial)
                reference.submit_all(trace.name, trace.batches)
            reference.run_until_drained()
            expected = checkpoint.fingerprint(reference)
        with StreamEngine(seed=9) as engine:
            for trace in traces:
                engine.add_tenant(trace.name, trace.initial)
                engine.submit_all(trace.name, trace.batches)
            engine.start(tick_interval=0.01)
            assert engine.running
            engine.wait_until_drained(timeout=30.0)
            engine.stop()
            assert not engine.running
            engine.verify()
            assert checkpoint.fingerprint(engine) == expected

    def test_concurrent_submissions_drain_to_standalone_outcomes(self):
        """Each tenant's batches arrive from its own thread while the ticker
        runs; interleaving may change tick shapes but never per-tenant
        results (disjoint state + per-batch atomicity)."""
        traces = _fleet()
        with StreamEngine(seed=9) as engine:
            for trace in traces:
                engine.add_tenant(trace.name, trace.initial)
            engine.start(tick_interval=0.005)

            def feed(trace):
                for batch in trace.batches:
                    engine.submit(trace.name, batch)
                    time.sleep(0.002)

            feeders = [
                threading.Thread(target=feed, args=(trace,)) for trace in traces
            ]
            for thread in feeders:
                thread.start()
            for thread in feeders:
                thread.join()
            engine.wait_until_drained(timeout=30.0)
            engine.stop()
            engine.verify()
            for index, trace in enumerate(traces):
                standalone = StreamingService(
                    trace.initial, seed=derive_seed(9, index)
                )
                standalone.apply_all(trace.batches)
                assert _tenant_fingerprint(
                    engine.tenant_service(trace.name)
                ) == _tenant_fingerprint(standalone)
                standalone.close()

    def test_ticker_absorbs_bad_batches_and_serves_siblings(self):
        """A failing head batch must not kill the ticker: the error lands in
        tick_errors, the bad queue stays, the sibling drains."""
        trace = uniform_churn_trace(64, num_batches=2, batch_size=30, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("good", trace.initial)
            engine.add_tenant("bad", Graph(64))  # any delete is dead
            engine.start(tick_interval=0.005)
            engine.submit("bad", UpdateBatch.from_ops([("-", 0, 1)]))
            engine.submit_all("good", trace.batches)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    engine.tenant_summary("good").num_batches == 2
                    and engine.tick_errors
                ):
                    break
                time.sleep(0.01)
            engine.stop()
            assert engine.tenant_summary("good").num_batches == 2
            assert engine.pending("bad") == 1
            assert any("dead edge" in str(exc) for exc in engine.tick_errors)
            engine.verify()

    def test_start_validates_state_and_interval(self):
        with StreamEngine(seed=5) as engine:
            with pytest.raises(GraphError, match="must be positive"):
                engine.start(tick_interval=0.0)
            with pytest.raises(GraphError, match="not running"):
                engine.wait_until_drained()
            engine.start(tick_interval=0.05)
            with pytest.raises(GraphError, match="already running"):
                engine.start()
            engine.stop()
            engine.stop()  # stop when stopped is a no-op
        with pytest.raises(GraphError, match="closed"):
            engine.start()


class TestCloseIdempotency:
    def test_double_close_with_live_ticker_leaks_nothing(self):
        """The ISSUE 10 fix: close() joins the ticker before releasing the
        pool, twice over, and the thread count returns to baseline."""
        baseline = threading.active_count()
        trace = uniform_churn_trace(64, num_batches=2, batch_size=30, seed=2)
        engine = StreamEngine(seed=5)
        engine.add_tenant("t", trace.initial)
        engine.submit_all("t", trace.batches)
        engine.start(tick_interval=0.005)
        assert engine.running
        engine.close()
        assert not engine.running
        engine.close()  # idempotent: no error, no double-release
        deadline = time.monotonic() + 10.0
        while threading.active_count() > baseline and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() == baseline
        with pytest.raises(GraphError, match="closed"):
            engine.tick()
        with pytest.raises(GraphError, match="closed"):
            engine.checkpoint("unused.json")

    def test_context_manager_close_then_explicit_close(self):
        trace = uniform_churn_trace(64, num_batches=1, batch_size=20, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", trace.initial)
            engine.submit_all("t", trace.batches)
            engine.run_until_drained()
        engine.close()  # after __exit__ already closed it


class TestFaultInjectionWorkerDeath:
    """PR 4 claim under repetition: a process worker dying mid-superstep is
    typed, the segments survive, and the pool recovers — every time."""

    ITERATIONS = 20

    def test_repeated_worker_kills_recover(self):
        rng = random.Random(0xC0FFEE)
        graph = union_of_random_forests(200, arboricity=2, seed=1)
        with WorkerPool(workers=2, backend=PROCESS) as pool:
            for iteration in range(self.ITERATIONS):
                seed = rng.randint(0, 2**31)
                parts = random_edge_partition(
                    graph, 8, seed=seed, num_parts=4
                ).parts
                handle = pool.publish_edge_parts(
                    f"parts-{iteration}", graph.num_vertices, parts
                )
                tasks = [(handle, i) for i in range(len(parts))]
                with pytest.raises(WorkerCrashError, match="respawn"):
                    pool.map(_die, tasks, backend=PROCESS, handles=(handle,))
                # segments survived the crash; the next map respawns workers
                assert pool.registry.segment_names()
                counts = pool.map(
                    _read_part_edges, tasks, backend=PROCESS, handles=(handle,)
                )
                assert counts == [part.num_edges for part in parts]


def _read_part_edges(handle, index):
    from repro.engine import shm

    return shm.shard_graph(handle, index).num_edges


def _die(handle, index):  # pragma: no cover - runs in a worker it kills
    os._exit(13)


class TestFaultInjectionTenantFailure:
    """PR 4/5 claims under repetition: a tenant failing mid-tick leaves its
    batch queued and its siblings byte-identical, across ≥20 randomized
    rounds in one engine."""

    ITERATIONS = 20

    def test_repeated_mid_tick_failures_keep_the_engine_consistent(self):
        rng = random.Random(0xFEED)
        trace = uniform_churn_trace(
            64, num_batches=self.ITERATIONS, batch_size=15, seed=7
        )
        mirror = StreamingService(trace.initial, seed=derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("good", trace.initial)
            engine.add_tenant("bad", Graph(64))
            for iteration in range(self.ITERATIONS):
                u = rng.randrange(63)
                dead = UpdateBatch.from_ops([("-", u, rng.randrange(u + 1, 64))])
                engine.submit("bad", dead)
                engine.submit("good", trace.batches[iteration])
                with pytest.raises(GraphError, match="dead edge"):
                    engine.tick()
                # the failed batch is still queued, object-identical
                assert engine.pending("bad") == iteration + 1
                assert engine._tenants["bad"].queue[iteration] is dead
                # the sibling was served in the same partial tick
                assert (
                    engine.tenant_summary("good").num_batches == iteration + 1
                )
                mirror.apply(trace.batches[iteration])
                assert _tenant_fingerprint(
                    engine.tenant_service("good")
                ) == _tenant_fingerprint(mirror)
            assert engine.tenant_summary("bad").num_batches == 0
            assert len(engine.ticks) == self.ITERATIONS
            engine.verify()
        mirror.close()


class TestFaultInjectionQuarantine:
    """PR 5 claim under repetition: every quota breach quarantines exactly
    the offender; an accumulating population of quarantined tenants never
    perturbs the survivor."""

    ITERATIONS = 20

    def test_repeated_breaches_isolate_only_the_offenders(self):
        rng = random.Random(0xBEEF)
        trace = uniform_churn_trace(
            64, num_batches=self.ITERATIONS, batch_size=15, seed=11
        )
        mirror = StreamingService(trace.initial, seed=derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("good", trace.initial)
            for iteration in range(self.ITERATIONS):
                hog_name = f"hog-{iteration}"
                hog_initial = union_of_random_forests(
                    48, arboricity=1, seed=rng.randint(0, 2**31)
                )
                quota = _quota_for(
                    hog_initial, derive_seed(5, iteration + 1)
                )
                engine.add_tenant(hog_name, hog_initial, memory_quota=quota)
                engine.submit(hog_name, _absent_edge_inserts(hog_initial, 30))
                engine.submit("good", trace.batches[iteration])
                with pytest.raises(QuotaExceededError, match=hog_name):
                    engine.tick()
                assert engine.tenant_state(hog_name) is TenantState.QUARANTINED
                assert engine.pending(hog_name) == 1
                assert engine.tenant_service(hog_name).dynamic.num_edges == (
                    hog_initial.num_edges
                )
                mirror.apply(trace.batches[iteration])
                assert _tenant_fingerprint(
                    engine.tenant_service("good")
                ) == _tenant_fingerprint(mirror)
            assert len(engine.quarantined()) == self.ITERATIONS
            assert engine.tenant_state("good") is TenantState.ACTIVE
            engine.verify()
        mirror.close()
