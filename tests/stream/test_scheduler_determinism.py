"""Cross-policy determinism matrix (ISSUE 5 satellite).

Extends PR 3's determinism contract to the scheduler layer: same seed ⇒
byte-identical per-tenant structures, tick schedule, and shared-ledger rounds
across workers {1, 2, 4} × backends {serial, thread, process} × all three
scheduling policies.  The engine degrades the process backend to its serial
loop (tenant tasks mutate live state), which must also be byte-identical.
"""

from __future__ import annotations

import pytest

from repro.engine import PROCESS, SERIAL, THREAD, ParallelExecutor
from repro.stream.engine import StreamEngine
from repro.stream.scheduler import POLICIES, make_planner
from repro.stream.workloads import skewed_tenant_traces

SEED = 11
BUDGET = 14


def _fleet():
    return skewed_tenant_traces(
        num_tenants=3,
        num_vertices=48,
        num_bursty=1,
        num_batches=2,
        batch_size=20,
        burst_factor=3,
        burst_period=2,
        seed=4,
    )


def _options(policy):
    if policy == "top-k-backlog":
        return {"k": 2}
    if policy == "deficit-round-robin":
        return {"quantum": 4}
    return {}


def _run(policy, executor=None):
    engine = StreamEngine(
        seed=SEED,
        executor=executor,
        planner=make_planner(policy, **_options(policy)),
        round_budget=BUDGET,
    )
    for trace in _fleet():
        engine.add_tenant(trace.name, trace.initial)
        engine.submit_all(trace.name, trace.batches)
    engine.run_until_drained(max_ticks=200)
    engine.verify()
    return engine


def _fingerprint(engine):
    tenants = tuple(
        (
            tuple(
                tuple(sorted(out))
                for out in engine.tenant_service(name).orientation._out
            ),
            tuple(engine.tenant_service(name).coloring._colors),
            engine.tenant_service(name).cluster.stats.num_rounds,
        )
        for name in engine.tenant_names()
    )
    schedule = tuple(
        (tick.planned, tick.deferred, tick.rounds) for tick in engine.ticks
    )
    return tenants + (schedule, engine.cluster.stats.num_rounds)


@pytest.fixture(scope="module")
def references():
    cache = {}
    for policy in POLICIES:
        with _run(policy) as engine:
            cache[policy] = _fingerprint(engine)
    return cache


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("backend", [SERIAL, THREAD, PROCESS])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_matrix_is_byte_identical(references, policy, backend, workers, kernel_backend):
    # ``kernel_backend`` (ISSUE 8) re-runs every cell per kernel backend; the
    # module-scoped references were computed under the default backend, which
    # is exactly the byte-identity contract being pinned.
    executor = ParallelExecutor(workers=workers, backend=backend)
    try:
        with _run(policy, executor=executor) as engine:
            assert _fingerprint(engine) == references[policy], (
                f"{policy} diverged under backend={backend} workers={workers}"
            )
    finally:
        executor.close()


def test_policies_actually_schedule_differently():
    """The matrix is only meaningful if the policies produce distinct
    schedules on this fleet — guard against a degenerate configuration."""
    schedules = {}
    for policy in POLICIES:
        with _run(policy) as engine:
            schedules[policy] = tuple(tick.planned for tick in engine.ticks)
    assert len(set(schedules.values())) > 1, schedules
