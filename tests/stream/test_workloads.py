"""Tests for the streaming trace generators and the S1 experiment wiring."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.experiments.registry import get_experiment
from repro.experiments.streaming import run_batch_size_experiment, run_streaming_experiment
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.graph import normalize_edge
from repro.stream.workloads import (
    StreamWorkload,
    densifying_core_trace,
    generate_trace,
    sliding_window_trace,
    stream_family_names,
    streaming_suite,
    uniform_churn_trace,
)


def replay(trace) -> set:
    """Apply a trace to a mirror edge set, asserting every update is legal."""
    live = set(trace.initial.edges)
    for batch in trace.batches:
        for update in batch.updates:
            e = normalize_edge(update.u, update.v)
            if update.is_insert:
                assert e not in live, f"illegal insert of live edge {e}"
                live.add(e)
            else:
                assert e in live, f"illegal delete of dead edge {e}"
                live.discard(e)
    return live


class TestTraceLegality:
    @pytest.mark.parametrize("family", sorted(stream_family_names()))
    def test_every_family_emits_legal_traces(self, family):
        trace = generate_trace(family, 128, seed=9, num_batches=6, batch_size=80)
        live = replay(trace)
        assert trace.num_updates > 0
        assert len(live) >= 0  # replay() already asserted per-update legality

    def test_traces_are_deterministic(self):
        a = uniform_churn_trace(64, num_batches=3, batch_size=40, seed=4)
        b = uniform_churn_trace(64, num_batches=3, batch_size=40, seed=4)
        assert a.batches == b.batches
        assert a.initial == b.initial
        c = uniform_churn_trace(64, num_batches=3, batch_size=40, seed=5)
        assert a.batches != c.batches

    def test_unknown_family_rejected(self):
        with pytest.raises(GraphError):
            generate_trace("no_such_family", 64)

    def test_tiny_saturated_graph_does_not_hang(self):
        """Regression: on K2 every edge slot is full, so churn must fall back
        to deletions instead of spinning forever looking for an absent edge."""
        replay(generate_trace("uniform_churn", 2, seed=0, num_batches=2, batch_size=4))
        replay(generate_trace("densifying_core", 2, seed=0, num_batches=2,
                              batch_size=4, core_size=2))

    def test_sliding_window_rejects_infeasible_window(self):
        with pytest.raises(GraphError):
            sliding_window_trace(4, window=10, num_batches=1, batch_size=5, seed=0)


class TestFamilyShapes:
    def test_sliding_window_keeps_exactly_window_edges(self):
        window = 150
        trace = sliding_window_trace(128, window=window, num_batches=5,
                                     batch_size=60, seed=1)
        assert trace.initial.num_edges == window
        live = set(trace.initial.edges)
        for batch in trace.batches:
            for update in batch.updates:
                e = normalize_edge(update.u, update.v)
                live.add(e) if update.is_insert else live.discard(e)
            assert len(live) == window  # every batch ends exactly at the window

    def test_densifying_core_grows_arboricity(self):
        trace = densifying_core_trace(128, core_size=32, num_batches=8,
                                      batch_size=100, seed=2)
        from repro.graph.graph import Graph

        final_live = replay(trace)
        initial_lambda = arboricity_upper_bound(trace.initial)
        final_lambda = arboricity_upper_bound(Graph(128, sorted(final_live)))
        assert final_lambda > 2 * initial_lambda

    def test_uniform_churn_keeps_density_flat(self):
        trace = uniform_churn_trace(128, arboricity=3, num_batches=6,
                                    batch_size=100, seed=3)
        final_live = replay(trace)
        initial_m = trace.initial.num_edges
        assert abs(len(final_live) - initial_m) < initial_m  # no blow-up


class TestWorkloadDescriptions:
    def test_stream_workload_materializes_and_describes(self):
        workload = StreamWorkload(
            name="t", family="uniform_churn", num_vertices=64, seed=1,
            params=(("num_batches", 2), ("batch_size", 30)),
        )
        trace = workload.materialize()
        assert trace.initial.num_vertices == 64
        assert len(trace.batches) == 2
        assert "uniform_churn" in workload.describe()

    def test_streaming_suite_covers_all_families(self):
        families = {w.family for w in streaming_suite()}
        assert families == set(stream_family_names())

    def test_s1_registered(self):
        spec = get_experiment("S1")
        assert spec.bench_module.endswith("bench_s1_streaming.py")
        assert len(spec.workloads) >= 3

    def test_run_streaming_experiment_row(self):
        workload = StreamWorkload(
            name="small", family="uniform_churn", num_vertices=96, seed=6,
            params=(("num_batches", 3), ("batch_size", 50), ("arboricity", 2)),
        )
        row = run_streaming_experiment(workload)
        data = row.as_dict()
        assert data["n"] == 96
        assert data["updates"] == 150.0
        assert data["proper"] == 1.0
        assert data["outdegree_ok"] == 1.0
        assert data["rounds"] > 0

    def test_s2_registered(self):
        spec = get_experiment("S2")
        assert spec.bench_module.endswith("bench_s2_batch_size.py")
        assert len(spec.workloads) >= 3

    def test_run_batch_size_experiment_amortises_rounds(self):
        """A bigger batch size must cost fewer amortised rounds/update on
        the same (small) windowed budget."""
        rows = []
        for batch_size in (20, 80):
            workload = StreamWorkload(
                name=f"window-b{batch_size}", family="sliding_window",
                num_vertices=96, seed=5,
                params=(("window", 160), ("num_batches", 160 // batch_size),
                        ("batch_size", batch_size)),
            )
            rows.append(run_batch_size_experiment(workload).as_dict())
        small, large = rows
        assert small["batch_size"] == 20.0 and large["batch_size"] == 80.0
        assert small["updates"] > 0 and large["updates"] > 0
        assert large["rounds_per_update"] < small["rounds_per_update"]
