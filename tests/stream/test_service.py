"""Tests for the StreamingService batch API and its MPC round accounting."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.service import StreamingService
from repro.stream.updates import DELETE, INSERT, EdgeUpdate, UpdateBatch
from repro.stream.workloads import densifying_core_trace, uniform_churn_trace


class TestUpdateObjects:
    def test_edge_update_validation(self):
        with pytest.raises(GraphError):
            EdgeUpdate("add", 0, 1)
        with pytest.raises(GraphError):
            EdgeUpdate(INSERT, 2, 2)
        assert EdgeUpdate(INSERT, 0, 1).is_insert
        assert not EdgeUpdate(DELETE, 0, 1).is_insert

    def test_batch_counts(self):
        batch = UpdateBatch.from_ops([("+", 0, 1), ("+", 1, 2), ("-", 0, 1)])
        assert len(batch) == 3
        assert batch.num_inserts == 2
        assert batch.num_deletes == 1


class TestServiceApply:
    def test_single_batch_updates_all_structures(self):
        service = StreamingService(Graph.empty(8), seed=0)
        report = service.apply(UpdateBatch.from_ops([
            ("+", 0, 1), ("+", 1, 2), ("+", 0, 2), ("-", 1, 2),
        ]))
        assert service.dynamic.num_edges == 2
        assert report.num_inserts == 3
        assert report.num_deletes == 1
        assert report.num_edges == 2
        assert report.max_outdegree >= 1
        service.verify()

    def test_batch_charges_communication_round(self):
        service = StreamingService(Graph.empty(8), seed=0)
        rounds_before = service.cluster.stats.num_rounds
        service.apply(UpdateBatch.from_ops([("+", 0, 1)]))
        assert service.cluster.stats.num_rounds > rounds_before
        assert service.cluster.stats.rounds_by_label["stream:batch"] == 1

    def test_empty_batch_charges_nothing(self):
        service = StreamingService(Graph.empty(8), seed=0)
        rounds_before = service.cluster.stats.num_rounds
        report = service.apply(UpdateBatch(()))
        assert service.cluster.stats.num_rounds == rounds_before
        assert report.rounds == 0

    def test_flip_and_recolor_rounds_labelled(self):
        trace = densifying_core_trace(128, core_size=32, num_batches=6,
                                      batch_size=100, seed=1)
        service = StreamingService(trace.initial, seed=1)
        summary = service.apply_all(trace.batches)
        labels = service.cluster.stats.rounds_by_label
        assert summary.total_flips > 0
        assert labels["stream:flip-repair"] >= 1
        assert summary.total_recolors > 0
        assert labels["stream:recolor"] >= 1

    def test_reports_accumulate_into_summary(self):
        trace = uniform_churn_trace(128, num_batches=5, batch_size=60, seed=2)
        service = StreamingService(trace.initial, seed=2)
        summary = service.apply_all(trace.batches)
        assert summary.num_batches == 5
        assert summary.total_updates == trace.num_updates
        assert summary.total_rounds == sum(r.rounds for r in summary.reports)
        final = summary.final_report()
        assert final.num_edges == service.dynamic.num_edges
        as_dict = summary.as_dict()
        assert as_dict["final_m"] == float(final.num_edges)
        assert as_dict["updates"] == float(trace.num_updates)

    def test_coloring_stays_proper_throughout(self):
        trace = uniform_churn_trace(96, num_batches=6, batch_size=80, seed=3)
        service = StreamingService(trace.initial, seed=3)
        for batch in trace.batches:
            service.apply(batch)
            assert service.coloring.is_proper()
        service.verify()

    def test_coloring_refreshed_after_rebuild(self):
        trace = densifying_core_trace(96, core_size=40, num_batches=8,
                                      batch_size=120, seed=4)
        service = StreamingService(trace.initial, seed=4)
        summary = service.apply_all(trace.batches)
        assert summary.total_rebuilds >= 1
        assert service.coloring.refreshes >= 1
        service.verify()

    def test_maintain_coloring_disabled(self):
        service = StreamingService(Graph.empty(8), maintain_coloring=False)
        report = service.apply(UpdateBatch.from_ops([("+", 0, 1)]))
        assert service.coloring is None
        assert report.num_colors == 0
        assert report.recolors == 0
        service.verify()

    def test_illegal_batch_rejected_atomically(self):
        """An illegal update anywhere in the batch must leave the service (and
        the round/memory ledger) completely untouched."""
        service = StreamingService(Graph(4, [(0, 1)]), seed=0)
        rounds_before = service.cluster.stats.num_rounds
        cases = [
            [("+", 0, 1)],                     # insert of live edge
            [("-", 2, 3)],                     # delete of dead edge
            [("+", 1, 2), ("+", 2, 1)],        # in-batch duplicate insert
            [("+", 1, 2), ("-", 1, 2), ("-", 2, 1)],  # in-batch double delete
            [("+", 0, 7)],                     # vertex out of range
        ]
        for ops in cases:
            with pytest.raises(GraphError):
                service.apply(UpdateBatch.from_ops(ops))
        assert service.dynamic.num_edges == 1
        assert service.cluster.stats.num_rounds == rounds_before
        assert service.summary.num_batches == 0
        service.verify()

    def test_insert_then_delete_then_reinsert_within_batch_is_legal(self):
        service = StreamingService(Graph.empty(4), seed=0)
        report = service.apply(UpdateBatch.from_ops([
            ("+", 0, 1), ("-", 0, 1), ("+", 0, 1),
        ]))
        assert report.num_updates == 3
        assert service.dynamic.num_edges == 1
        service.verify()

    def test_graph_growth_shows_up_in_memory_ledger(self):
        """The live graph is re-accounted each batch, so insertions must move
        the cluster's global memory figure (not just the initial load)."""
        service = StreamingService(Graph.empty(64), seed=0)
        base_words = service.cluster.global_memory_in_use()
        for start in range(0, 48, 12):
            service.apply(UpdateBatch.from_ops(
                [("+", u, u + 1) for u in range(start, start + 12)]
            ))
        grown_words = service.cluster.global_memory_in_use()
        assert grown_words == base_words + 2 * service.dynamic.num_edges
        assert service.cluster.stats.peak_global_memory_words >= grown_words

    def test_snapshot_serves_static_pipeline_after_churn(self):
        """The service's compacted state feeds the one-shot pipeline directly."""
        from repro.core.orientation import orient

        trace = uniform_churn_trace(128, num_batches=4, batch_size=100, seed=5)
        service = StreamingService(trace.initial, seed=5)
        service.apply_all(trace.batches)
        run = orient(service.dynamic.snapshot(), seed=5)
        assert run.orientation.graph.num_edges == service.dynamic.num_edges
