"""Guard: the no-op tracer must stay under 5% overhead on a hot path.

``NULL_TRACER`` is wired permanently through the engine/stream/kernel hot
paths, so its per-span cost (one attribute load, one shared inert ``with``
block) has to be negligible.  Timings interleave the bare and wrapped loops
and compare best-of-N, so machine noise hits both sides equally.
"""

from __future__ import annotations

import time

from repro.obs import NULL_TRACER

OVERHEAD_LIMIT = 1.05
CHUNKS = 32
CHUNK_WORK = 2000
REPEATS = 5


def _chunk(acc: int) -> int:
    for i in range(CHUNK_WORK):
        acc = (acc + i * i) & 0xFFFFFFF
    return acc


def _plain_pass() -> int:
    acc = 0
    for _ in range(CHUNKS):
        acc = _chunk(acc)
    return acc


def _traced_pass() -> int:
    acc = 0
    for _ in range(CHUNKS):
        with NULL_TRACER.span("chunk"):
            acc = _chunk(acc)
    return acc


def test_nulltracer_overhead_is_under_five_percent():
    assert _plain_pass() == _traced_pass()  # warm-up; also: spans change nothing
    plain_best = float("inf")
    traced_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _plain_pass()
        plain_best = min(plain_best, time.perf_counter() - start)
        start = time.perf_counter()
        _traced_pass()
        traced_best = min(traced_best, time.perf_counter() - start)
    ratio = traced_best / plain_best
    assert ratio < OVERHEAD_LIMIT, (plain_best, traced_best, ratio)
