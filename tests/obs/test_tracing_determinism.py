"""Tracing must not perturb byte-identical determinism.

The matrix the tentpole pins: with the same seed, ``orient``, ``color``, and
a quota-breaching engine run all produce identical results — heads, colors,
round counts, quarantine decisions — with tracing on or off, on every
backend (serial / thread / process) and worker count (1 / 2 / 4).  The
tracer only ever *reads* the ledger, so a single golden fingerprint per
scenario must match every cell of the matrix.
"""

from __future__ import annotations

import pytest

from repro.core.coloring import color
from repro.core.orientation import orient
from repro.engine import PROCESS, SERIAL, THREAD, ParallelExecutor, derive_seed
from repro.errors import QuotaExceededError
from repro.graph.generators import union_of_random_forests
from repro.obs import Tracer
from repro.stream.engine import StreamEngine
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import multi_tenant_traces

# (backend, workers): serial is single-worker by definition; thread and
# process cover the multi-worker cells of the 1/2/4 sweep.
MATRIX = [
    (SERIAL, 1),
    (THREAD, 2),
    (THREAD, 4),
    (PROCESS, 2),
    (PROCESS, 4),
]
TRACING = [False, True]


def _matrix_id(cell):
    backend, workers = cell
    return f"{backend}-w{workers}"


def _kernel_graph():
    return union_of_random_forests(160, arboricity=4, seed=21)


def _orient_fingerprint(backend, workers, tracer):
    executor = ParallelExecutor(workers=workers, backend=backend)
    try:
        run = orient(
            _kernel_graph(),
            seed=21,
            workers=workers,
            executor=executor,
            force_edge_partitioning=True,
            tracer=tracer,
        )
    finally:
        executor.close()
    return (
        tuple(run.orientation._heads),
        run.max_outdegree,
        run.rounds,
        run.num_parts,
    )


def _color_fingerprint(backend, workers, tracer):
    executor = ParallelExecutor(workers=workers, backend=backend)
    try:
        run = color(
            _kernel_graph(),
            seed=21,
            workers=workers,
            executor=executor,
            force_vertex_partitioning=True,
            tracer=tracer,
        )
    finally:
        executor.close()
    return (
        tuple(sorted(run.coloring._color_of.items())),
        run.num_colors,
        run.rounds,
    )


def _hog_quota_and_inserts(initial, seed):
    """A quota tight enough to breach on a burst of fresh inserts."""
    probe = StreamingService(initial, seed=seed)
    quota = (
        max(
            probe.cluster.stats.peak_global_memory_words,
            probe.cluster.global_memory_in_use(),
        )
        + 4
    )
    probe.close()
    inserts = []
    for u in range(initial.num_vertices):
        for v in range(u + 1, initial.num_vertices):
            if not initial.has_edge(u, v):
                inserts.append(("+", u, v))
                if len(inserts) == 10:
                    return quota, inserts
    return quota, inserts


def _engine_fingerprint(workers, tracer):
    """A quota-breach engine run: sibling results + quarantine + tick rounds."""
    traces = multi_tenant_traces(
        num_tenants=2, num_vertices=48, num_batches=2, batch_size=16, seed=13
    )
    hog_initial = traces[1].initial
    quota, inserts = _hog_quota_and_inserts(hog_initial, derive_seed(13, 1))
    breached = False
    with StreamEngine(seed=13, workers=workers, tracer=tracer) as engine:
        engine.add_tenant(traces[0].name, traces[0].initial)
        engine.add_tenant("hog", hog_initial, memory_quota=quota)
        engine.submit_all(traces[0].name, traces[0].batches)
        engine.submit("hog", UpdateBatch.from_ops(inserts))
        try:
            engine.run_until_drained(max_ticks=50)
        except QuotaExceededError:
            breached = True
            engine.run_until_drained(max_ticks=50)
        engine.verify()
        sibling = engine.tenant_service(traces[0].name)
        return (
            breached,
            tuple(sorted(engine.quarantined())),
            tuple(tick.rounds for tick in engine.ticks),
            tuple(tuple(sorted(out)) for out in sibling.orientation._out),
            tuple(sibling.coloring._colors),
            tuple(
                tuple(sorted(report.as_dict().items()))
                for report in sibling.summary.reports
            ),
        )


class TestKernelMatrix:
    @pytest.mark.parametrize("traced", TRACING, ids=["untraced", "traced"])
    @pytest.mark.parametrize("cell", MATRIX, ids=_matrix_id)
    def test_orient_is_identical_across_the_matrix(self, cell, traced, kernel_backend):
        # ``kernel_backend`` (ISSUE 8) adds the pure/numpy dimension: the
        # golden fingerprint is recomputed under the same kernels, and the
        # pinned bytes must not depend on them.
        backend, workers = cell
        golden = _orient_fingerprint(SERIAL, 1, None)
        tracer = Tracer() if traced else None
        assert _orient_fingerprint(backend, workers, tracer) == golden

    @pytest.mark.parametrize("traced", TRACING, ids=["untraced", "traced"])
    @pytest.mark.parametrize("cell", MATRIX, ids=_matrix_id)
    def test_color_is_identical_across_the_matrix(self, cell, traced, kernel_backend):
        backend, workers = cell
        golden = _color_fingerprint(SERIAL, 1, None)
        tracer = Tracer() if traced else None
        assert _color_fingerprint(backend, workers, tracer) == golden


class TestEngineQuotaMatrix:
    @pytest.mark.parametrize("traced", TRACING, ids=["untraced", "traced"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_quota_breach_run_is_identical_with_tracing_on_or_off(self, workers, traced):
        golden = _engine_fingerprint(1, None)
        assert golden[0] is True  # the quota actually breached
        assert golden[1] == ("hog",)
        tracer = Tracer() if traced else None
        assert _engine_fingerprint(workers, tracer) == golden
