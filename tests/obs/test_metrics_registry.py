"""MetricsRegistry counters/gauges/histograms and the NullMetrics no-op."""

from __future__ import annotations

import pickle
import threading

from repro.obs import NULL_METRICS, MetricsRegistry, NullMetrics


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("a", 4)
        metrics.inc("b")
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"a": 5, "b": 1}

    def test_gauges_keep_the_last_value(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth", 7)
        metrics.gauge("depth", 3)
        assert metrics.snapshot()["gauges"] == {"depth": 3}

    def test_histograms_track_count_sum_min_max(self):
        metrics = MetricsRegistry()
        for value in (4.0, 1.0, 7.0):
            metrics.observe("latency", value)
        hist = metrics.snapshot()["histograms"]["latency"]
        assert hist["count"] == 3
        assert hist["sum"] == 12.0
        assert hist["mean"] == 4.0
        assert hist["min"] == 1.0
        assert hist["max"] == 7.0

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        snapshot = metrics.snapshot()
        snapshot["counters"]["a"] = 99
        assert metrics.snapshot()["counters"]["a"] == 1

    def test_concurrent_increments_do_not_lose_counts(self):
        metrics = MetricsRegistry()

        def spin():
            for _ in range(1000):
                metrics.inc("hits")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.snapshot()["counters"]["hits"] == 4000


class TestNullMetrics:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("a")
        NULL_METRICS.gauge("b", 1)
        NULL_METRICS.observe("c", 2.0)
        snapshot = NULL_METRICS.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_picklable(self):
        clone = pickle.loads(pickle.dumps(NULL_METRICS))
        assert isinstance(clone, NullMetrics)
        assert clone.enabled is False
