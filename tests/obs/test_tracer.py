"""Tracer span nesting, ledger deltas, ring buffer, exports, and the no-op."""

from __future__ import annotations

import json
import pickle
import threading
import time

import pytest

from repro.graph.generators import union_of_random_forests
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.obs import NULL_TRACER, NullTracer, Tracer


def _make_cluster():
    graph = union_of_random_forests(32, arboricity=2, seed=1)
    cluster = MPCCluster(MPCConfig.for_graph(graph))
    cluster.load_graph(graph)
    return cluster


class TestSpanNesting:
    def test_inner_span_parents_under_the_outer(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        records = {record.name: record for record in tracer.records}
        assert records["outer"].parent_id is None
        assert records["inner"].parent_id == outer.span_id
        assert records["inner"].start_ns >= records["outer"].start_ns
        assert records["inner"].end_ns <= records["outer"].end_ns

    def test_explicit_parent_overrides_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("adopted", parent=999):
                pass
        adopted = next(r for r in tracer.records if r.name == "adopted")
        assert adopted.parent_id == 999
        assert adopted.parent_id != outer.span_id

    def test_sibling_threads_do_not_nest_under_each_other(self):
        tracer = Tracer()
        done = threading.Event()

        def child():
            with tracer.span("on-thread"):
                pass
            done.set()

        with tracer.span("main"):
            worker = threading.Thread(target=child)
            worker.start()
            worker.join()
        assert done.is_set()
        on_thread = next(r for r in tracer.records if r.name == "on-thread")
        assert on_thread.parent_id is None  # thread-local stacks are separate

    def test_annotate_lands_in_args(self):
        tracer = Tracer()
        with tracer.span("tick", policy="serve-all") as span:
            span.annotate(served=3)
        record = tracer.records[0]
        assert record.args["policy"] == "serve-all"
        assert record.args["served"] == 3

    def test_current_span_id_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None


class TestLedgerDeltas:
    def test_span_carries_rounds_and_volume_charged_while_open(self):
        cluster = _make_cluster()
        tracer = Tracer()
        cluster.instrument(tracer)
        cluster.communication_round([(0, 1, 3)])
        with tracer.span("work", cluster=cluster):
            cluster.communication_round([(0, 1, 2)])
            cluster.communication_round([(1, 0, 1)])
        record = tracer.records[0]
        assert record.args["rounds"] == 2  # the pre-span round is not charged
        assert record.args["volume"] == 3

    def test_span_without_cluster_has_no_ledger_args(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        assert "rounds" not in tracer.records[0].args

    def test_instrumented_cluster_counts_rounds_and_words(self):
        cluster = _make_cluster()
        tracer = Tracer()
        cluster.instrument(tracer)
        cluster.communication_round([(0, 1, 3)])
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["mpc.rounds"] == 1
        assert counters["mpc.words_sent"] == 3

    def test_pickled_cluster_sheds_its_tracer(self):
        cluster = _make_cluster()
        tracer = Tracer()
        cluster.instrument(tracer)
        clone = pickle.loads(pickle.dumps(cluster))
        assert clone._tracer is not tracer
        assert clone._tracer.enabled is False


class TestRingBufferAndExport:
    def test_capacity_bounds_the_record_window(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [record.name for record in tracer.records]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_chrome_export_is_sorted_complete_events(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", cat="engine"):
            with tracer.span("inner"):
                pass
        tracer.metrics.inc("hits", 2)
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == tracer.pid
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        assert payload["metrics"]["counters"] == {"hits": 2}

    def test_jsonl_export_round_trips_every_span(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", tag="x"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["name"] == "a"
        assert lines[0]["args"]["tag"] == "x"

    def test_record_span_rebases_absolute_timestamps(self):
        tracer = Tracer()
        start = time.perf_counter_ns()
        end = start + 1000
        record = tracer.record_span("worker-task", start, end, tid=4242, parent=7)
        assert record.start_ns >= 0
        assert record.duration_ns == 1000
        assert record.tid == 4242
        assert record.parent_id == 7


class TestNullTracer:
    def test_disabled_shared_span_and_empty_records(self):
        assert NULL_TRACER.enabled is False
        span_a = NULL_TRACER.span("a", cluster=object(), parent=3, anything=1)
        span_b = NULL_TRACER.span("b")
        assert span_a is span_b  # one shared inert span, no allocation
        with span_a as span:
            span.annotate(ignored=True)
            assert span.span_id is None
        assert NULL_TRACER.records == []
        assert NULL_TRACER.record_span("x", 0, 1) is None
        assert NULL_TRACER.current_span_id() is None

    def test_picklable(self):
        clone = pickle.loads(pickle.dumps(NULL_TRACER))
        assert isinstance(clone, NullTracer)
        assert clone.enabled is False
