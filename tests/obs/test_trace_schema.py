"""Exported trace shape: event fields, parent chains, laminar nesting.

The Chrome payload is the contract the ``--trace`` CLI flag and the CI
trace-smoke step rely on: every event a complete ("X") event with
``ph/ts/dur/pid/tid``, the engine's tick → tenant → batch parent chain
intact, planner decisions annotated on tick spans, and — per tid — spans
forming a laminar family (properly nested, never partially overlapping).
"""

from __future__ import annotations

import pytest

from repro.core.orientation import orient
from repro.engine import PROCESS, ParallelExecutor
from repro.graph.generators import union_of_random_forests
from repro.obs import Tracer
from repro.stream.engine import StreamEngine
from repro.stream.scheduler import make_planner
from repro.stream.workloads import multi_tenant_traces

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


@pytest.fixture(scope="module")
def engine_payload():
    """One traced budgeted multi-tenant run, shared across the module."""
    tracer = Tracer()
    traces = multi_tenant_traces(
        num_tenants=3, num_vertices=64, num_batches=2, batch_size=24, seed=7
    )
    with StreamEngine(
        seed=7,
        workers=2,
        tracer=tracer,
        planner=make_planner("top-k-backlog", k=2),
        round_budget=48,
    ) as engine:
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        engine.run_until_drained(max_ticks=50)
        engine.verify()
    return tracer.chrome_payload()


def _events_by_id(payload):
    return {event["args"]["id"]: event for event in payload["traceEvents"]}


class TestEventSchema:
    def test_every_event_is_a_complete_event_with_required_fields(self, engine_payload):
        events = engine_payload["traceEvents"]
        assert events
        for event in events:
            for field in REQUIRED_EVENT_FIELDS:
                assert field in event, event
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_events_are_sorted_by_timestamp(self, engine_payload):
        timestamps = [event["ts"] for event in engine_payload["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_metrics_snapshot_rides_along(self, engine_payload):
        counters = engine_payload["metrics"]["counters"]
        tick_count = sum(
            1 for event in engine_payload["traceEvents"] if event["name"] == "tick"
        )
        assert counters["engine.ticks"] == tick_count
        assert counters["engine.tenants_served"] > 0
        assert counters["engine.tenants_deferred"] > 0  # K=2 of 3 defers someone


class TestParentChains:
    def test_tick_tenant_batch_chain(self, engine_payload):
        by_id = _events_by_id(engine_payload)
        chains = 0
        for event in engine_payload["traceEvents"]:
            if event["name"] != "batch":
                continue
            tenant = by_id.get(event["args"].get("parent"))
            assert tenant is not None and tenant["name"] == "tenant", event
            tick = by_id.get(tenant["args"].get("parent"))
            assert tick is not None and tick["name"] == "tick", tenant
            chains += 1
        assert chains > 0

    def test_tick_spans_carry_planner_decisions_and_ledger_deltas(self, engine_payload):
        ticks = [
            event for event in engine_payload["traceEvents"] if event["name"] == "tick"
        ]
        assert ticks
        for event in ticks:
            args = event["args"]
            assert args["policy"] == "top-k-backlog"
            assert args["round_budget"] == 48
            assert isinstance(args["planned"], list)
            assert isinstance(args["served"], list)
            assert args["rounds"] >= 0
            assert args["volume"] >= 0
        # Somebody was actually deferred under K=2 with 3 backlogged tenants.
        assert any(event["args"]["deferred"] for event in ticks)

    def test_repair_spans_nest_inside_batches(self, engine_payload):
        by_id = _events_by_id(engine_payload)
        repairs = [
            event
            for event in engine_payload["traceEvents"]
            if event["name"] in ("repair", "recolor", "quality")
        ]
        assert repairs
        for event in repairs:
            parent = by_id.get(event["args"].get("parent"))
            assert parent is not None and parent["name"] == "batch", event


class TestLaminarNesting:
    def test_per_tid_intervals_form_a_laminar_family(self, engine_payload):
        by_tid: dict[int, list[dict]] = {}
        for event in engine_payload["traceEvents"]:
            by_tid.setdefault(event["tid"], []).append(event)
        for tid, group in by_tid.items():
            group.sort(key=lambda event: (event["ts"], -event["dur"]))
            open_ends: list[float] = []
            for event in group:
                start = event["ts"]
                end = start + event["dur"]
                while open_ends and open_ends[-1] <= start + 1e-9:
                    open_ends.pop()
                if open_ends:
                    assert end <= open_ends[-1] + 1e-6, (tid, event)
                open_ends.append(end)


class TestWorkerStitching:
    def test_process_fanout_records_worker_spans_and_queue_metrics(self):
        graph = union_of_random_forests(200, arboricity=4, seed=11)
        tracer = Tracer()
        executor = ParallelExecutor(workers=2, backend=PROCESS)
        run = orient(
            graph,
            seed=11,
            workers=2,
            executor=executor,
            force_edge_partitioning=True,
            tracer=tracer,
        )
        executor.close()
        assert run.used_edge_partitioning
        names = [record.name for record in tracer.records]
        assert any(name == "orient:fanout" for name in names)
        assert any(name == "orient:merge" for name in names)
        assert any(name.startswith("map:") for name in names)
        task_records = [
            record for record in tracer.records if record.name.startswith("task:")
        ]
        assert task_records
        map_ids = {
            record.span_id
            for record in tracer.records
            if record.name.startswith("map:")
        }
        worker_pids = set()
        for record in task_records:
            assert record.cat == "worker"
            assert record.parent_id in map_ids
            worker_pids.add(record.tid)
        # Process-backend task spans are keyed by worker pid, not our threads.
        import os

        assert os.getpid() not in worker_pids
        histograms = tracer.metrics.snapshot()["histograms"]
        assert any(name.startswith("pool.queue_wait_ns.") for name in histograms)
        assert any(name.startswith("pool.run_ns.") for name in histograms)
