"""trace-report and bench-report table builders."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Tracer
from repro.obs.report import (
    bench_trend_tables,
    load_bench_snapshots,
    load_trace,
    span_summary_table,
    trace_report_tables,
)


def _write_trace(tmp_path):
    tracer = Tracer()
    with tracer.span("tick"):
        with tracer.span("batch"):
            pass
        with tracer.span("batch"):
            pass
    tracer.metrics.inc("engine.ticks")
    tracer.metrics.observe("pool.run_ns.worker:0", 120.0)
    path = tmp_path / "trace.json"
    tracer.export_chrome(path)
    return path


class TestTraceReport:
    def test_load_trace_rejects_non_traces(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(path)

    def test_span_summary_groups_by_name(self, tmp_path):
        payload = load_trace(_write_trace(tmp_path))
        table = span_summary_table(payload)
        rendered = table.to_ascii()
        assert "tick" in rendered
        assert "batch" in rendered
        # Two batch spans fold into one row with count 2.
        batch_row = next(line for line in rendered.splitlines() if line.startswith("batch"))
        assert " 2 " in f" {batch_row} "

    def test_trace_report_includes_metrics_and_histograms(self, tmp_path):
        tables = trace_report_tables(_write_trace(tmp_path))
        rendered = "\n".join(table.to_ascii() for table in tables)
        assert "trace spans" in rendered
        assert "engine.ticks" in rendered
        assert "pool.run_ns.worker:0" in rendered


def _snapshot(tmp_path, bench, stamp, results):
    path = tmp_path / f"BENCH_{bench}_{stamp}.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "bench": bench,
                "timestamp_utc": stamp,
                "results": results,
            }
        )
    )
    return path


class TestBenchReport:
    def test_snapshots_group_by_bench_and_sort_by_timestamp(self, tmp_path):
        _snapshot(tmp_path, "alpha", "20260102T000000Z", {"speedup": 2.0})
        _snapshot(tmp_path, "alpha", "20260101T000000Z", {"speedup": 1.0})
        _snapshot(tmp_path, "beta", "20260101T000000Z", {"rounds": 5})
        (tmp_path / "BENCH_broken_x.json").write_text("{not json")
        (tmp_path / "BENCH_shapeless_y.json").write_text("[1, 2]")
        by_bench = load_bench_snapshots(tmp_path)
        assert sorted(by_bench) == ["alpha", "beta"]
        stamps = [payload["timestamp_utc"] for payload in by_bench["alpha"]]
        assert stamps == ["20260101T000000Z", "20260102T000000Z"]

    def test_trend_table_reports_latest_previous_and_ratio(self, tmp_path):
        _snapshot(
            tmp_path, "alpha", "20260101T000000Z", {"speedup": 1.0, "zeroed": 0.0}
        )
        _snapshot(
            tmp_path, "alpha", "20260102T000000Z", {"speedup": 2.0, "zeroed": 3.0}
        )
        tables = bench_trend_tables(tmp_path)
        assert len(tables) == 1
        rendered = tables[0].to_ascii()
        assert "2 snapshot(s)" in rendered
        speedup_row = next(
            line for line in rendered.splitlines() if line.startswith("speedup")
        )
        assert "2.000" in speedup_row  # latest / previous ratio
        zero_row = next(
            line for line in rendered.splitlines() if line.startswith("zeroed")
        )
        assert "inf" in zero_row

    def test_single_snapshot_drops_trend_columns(self, tmp_path):
        _snapshot(tmp_path, "alpha", "20260101T000000Z", {"speedup": 1.5})
        table = bench_trend_tables(tmp_path)[0]
        assert table.columns == ["metric", "latest"]
        rendered = table.to_ascii()
        assert "previous" not in rendered and "ratio" not in rendered
        row = next(line for line in rendered.splitlines() if line.startswith("speedup"))
        assert "1.5" in row

    def test_row_list_results_are_flattened_with_labels(self, tmp_path):
        _snapshot(
            tmp_path,
            "sweep",
            "20260101T000000Z",
            [
                {"workload": "forest", "rounds": 4, "ok": True},
                {"rounds": 6},
            ],
        )
        rendered = bench_trend_tables(tmp_path)[0].to_ascii()
        assert "forest/rounds" in rendered
        assert "1/rounds" in rendered
        assert "ok" not in rendered  # booleans are not trend metrics

    def test_empty_directory_yields_no_tables(self, tmp_path):
        assert bench_trend_tables(tmp_path) == []


FIXTURES = Path(__file__).parent / "fixtures"


class TestBenchReportFixtures:
    """Trend rendering pinned against two committed full-shape snapshots.

    The fixtures mirror real ``write_snapshot`` output (schema/host/meta
    blocks included) so the loader is exercised on the shape ``repro
    bench-report`` actually reads, not a minimal synthetic dict.  The newer
    snapshot deliberately carries a JSON ``Infinity`` metric over a zero
    baseline — the ratio-row combination that used to crash
    ``Table._format`` (``int(inf)`` raises ``OverflowError``).
    """

    def test_two_snapshot_trend_renders_ratios(self):
        tables = bench_trend_tables(FIXTURES)
        assert len(tables) == 1
        table = tables[0]
        assert table.columns == ["metric", "previous", "latest", "ratio"]
        rendered = table.to_ascii()
        assert "stream_hotpaths — 2 snapshot(s), latest 20260802T000000Z" in rendered
        speedup_row = next(
            line for line in rendered.splitlines()
            if line.startswith("composite_speedup")
        )
        # 6.438... / 4.0
        assert "1.610" in speedup_row
        replay_row = next(
            line for line in rendered.splitlines() if line.startswith("replay_ratio")
        )
        assert "1.000" in replay_row  # unchanged metric trends flat

    def test_non_finite_metric_renders_without_crashing(self):
        rendered = bench_trend_tables(FIXTURES)[0].to_ascii()
        row = next(
            line for line in rendered.splitlines()
            if line.startswith("spurious_rebuilds")
        )
        # previous 0.0, latest Infinity: both the formatted latest cell and
        # the zero-baseline ratio read "inf" instead of raising.
        assert row.count("inf") == 2

    def test_markdown_rendering_matches_columns(self):
        markdown = bench_trend_tables(FIXTURES)[0].to_markdown()
        header = next(
            line for line in markdown.splitlines() if line.startswith("| metric")
        )
        assert header == "| metric | previous | latest | ratio |"
