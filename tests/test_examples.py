"""Smoke test: every script in examples/ must run on tiny inputs.

The examples are the repo's live documentation; as the API grows they are the
first thing to silently rot.  Each script takes an optional ``num_vertices``
as its first argument, so running them all at n=200 keeps the whole smoke
pass under a few seconds while still exercising the real entry points
(orientation, coloring, layering, densest subgraph, streaming service).

New example scripts are picked up automatically — the parametrisation globs
the directory.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"
SMALL_N = "200"

example_scripts = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(example_scripts) >= 5


@pytest.mark.parametrize("script", example_scripts, ids=lambda p: p.name)
def test_example_runs_on_tiny_input(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(script), SMALL_N],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
