"""WorkerPool + ShardRegistry lifecycle edge cases (ISSUE 6 satellite).

Three failure modes the resident-pool refactor must survive:

* a process worker dying mid-superstep surfaces as a typed
  :class:`~repro.errors.WorkerCrashError`, the published segments (owned by
  the parent) survive, and the next map respawns workers and succeeds;
* a handle from a retired generation — republished or invalidated — is
  rejected with :class:`~repro.errors.StaleShardError` on every backend,
  never silently served old data through the pool's ``map`` gate;
* no shared-memory segments outlive their owner: explicit ``close``,
  engine/service teardown, and the ``atexit`` sweep for an owner that never
  closed all leave nothing behind (asserted by name-probing from a separate
  process with its own resource tracker).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.engine import PROCESS, WorkerPool, shm
from repro.errors import StaleShardError, WorkerCrashError
from repro.core.partitioning import random_edge_partition
from repro.graph.generators import union_of_random_forests
from repro.stream.engine import StreamEngine

_PYTHONPATH = os.pathsep.join(
    path
    for path in (
        os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))),
        os.environ.get("PYTHONPATH", ""),
    )
    if path
)


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _PYTHONPATH
    return env


def _segment_exists(name: str) -> bool:
    """Probe a shared-memory segment by name from a separate process.

    The probe attaches (the only portable existence test), then unregisters
    from its *own* resource tracker before closing — otherwise the probe
    process would unlink the parent's live segment at exit.
    """
    script = (
        "import sys\n"
        "from multiprocessing import shared_memory, resource_tracker\n"
        "try:\n"
        "    segment = shared_memory.SharedMemory(name=sys.argv[1])\n"
        "except FileNotFoundError:\n"
        "    print('absent')\n"
        "else:\n"
        "    resource_tracker.unregister(segment._name, 'shared_memory')\n"
        "    segment.close()\n"
        "    print('present')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script, name],
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip() == "present"


def _graph_and_parts(seed=1, num_parts=4):
    graph = union_of_random_forests(200, arboricity=2, seed=seed)
    parts = random_edge_partition(graph, 8, seed=seed + 1, num_parts=num_parts).parts
    return graph, parts


def _read_part_edges(handle, index):
    return shm.shard_graph(handle, index).num_edges


def _die(handle, index):  # pragma: no cover - runs in a worker it kills
    os._exit(13)


class TestWorkerDeath:
    def test_death_mid_superstep_is_typed_and_the_pool_respawns(self):
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=2, backend=PROCESS) as pool:
            handle = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            tasks = [(handle, i) for i in range(len(parts))]
            expected = pool.map(
                _read_part_edges, tasks, backend=PROCESS, handles=(handle,)
            )
            assert expected == [part.num_edges for part in parts]

            with pytest.raises(WorkerCrashError, match="respawn"):
                pool.map(_die, tasks, backend=PROCESS, handles=(handle,))

            # The crash killed workers, not segments: the publication is
            # still materialised and the next map respawns and succeeds.
            assert pool.registry.segment_names()
            again = pool.map(
                _read_part_edges, tasks, backend=PROCESS, handles=(handle,)
            )
            assert again == expected


class TestStaleGenerations:
    def test_republish_stales_old_handles_in_process(self):
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=1) as pool:
            old = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            assert shm.shard_graph(old, 0).num_edges == parts[0].num_edges
            fresh = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            assert fresh.generation == old.generation + 1
            with pytest.raises(StaleShardError, match="republished as generation 2"):
                shm.shard_graph(old, 0)
            assert shm.shard_graph(fresh, 0).num_edges == parts[0].num_edges

    def test_invalidate_stales_handles_and_generation_never_reverts(self):
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=1) as pool:
            old = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            pool.invalidate("parts")
            with pytest.raises(StaleShardError, match="invalidated"):
                shm.shard_graph(old, 0)
            # The tombstone carries the counter forward: a retired generation
            # number is never reused, so the old handle stays stale forever.
            fresh = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            assert fresh.generation == old.generation + 1
            with pytest.raises(StaleShardError):
                shm.shard_graph(old, 0)

    def test_process_map_rejects_stale_handles_at_the_gate(self):
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=2, backend=PROCESS) as pool:
            old = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            pool.publish_edge_parts("parts", graph.num_vertices, parts)
            tasks = [(old, i) for i in range(len(parts))]
            # ensure_shared runs before any task ships: the stale handle is
            # rejected parent-side, workers never see it.
            with pytest.raises(StaleShardError, match="republished"):
                pool.map(_read_part_edges, tasks, backend=PROCESS, handles=(old,))

    def test_worker_attach_of_a_never_materialised_segment_is_typed(self):
        """A stale handle smuggled past the gate (not listed in ``handles``)
        still fails typed in the worker: the segment was never created, so
        the attach raises StaleShardError — which must survive the pickle
        trip back to the parent."""
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=2, backend=PROCESS) as pool:
            handle = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            tasks = [(handle, i) for i in range(len(parts))]
            with pytest.raises(StaleShardError, match="never materialised"):
                pool.map(_read_part_edges, tasks, backend=PROCESS, handles=())


class TestStatsAndInstrumentation:
    def test_stats_counts_tasks_segments_and_generations(self):
        graph, parts = _graph_and_parts()
        with WorkerPool(workers=2) as pool:
            stats = pool.stats()
            assert stats["workers"] == 2
            assert stats["tasks_run"] == 0
            assert stats["respawns"] == 0
            handle = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            pool.registry.ensure_shared(handle)
            pool.map(_read_part_edges, [(handle, i) for i in range(len(parts))])
            stats = pool.stats()
            assert stats["tasks_run"] == len(parts)
            assert stats["segments"] >= 1
            assert stats["registry_keys"] >= 1
            assert stats["registry_generations"] >= 1
            pool.publish_edge_parts("parts", graph.num_vertices, parts)
            assert pool.stats()["registry_generations"] >= 2

    def test_worker_crash_bumps_the_respawn_counter_and_metric(self):
        from repro.obs import Tracer

        graph, parts = _graph_and_parts()
        tracer = Tracer()
        with WorkerPool(workers=2, backend=PROCESS) as pool:
            pool.instrument(tracer)
            handle = pool.publish_edge_parts("parts", graph.num_vertices, parts)
            tasks = [(handle, i) for i in range(len(parts))]
            with pytest.raises(WorkerCrashError):
                pool.map(_die, tasks, backend=PROCESS, handles=(handle,))
            assert pool.stats()["respawns"] == 1
            assert tracer.metrics.snapshot()["counters"]["pool.respawns"] == 1
            assert tracer.metrics.snapshot()["counters"]["shm.publishes"] == 1

    def test_partial_republish_counters_track_carried_columns(self):
        """ISSUE 9 satellite: delta-aware column publication is observable.

        Republishing a graph whose edge columns did not change carries both
        columns (no generation bump); a graph that changed republishes
        exactly the changed columns.  ``stats()`` exposes the split.
        """
        graph = union_of_random_forests(32, arboricity=2, seed=1)
        with WorkerPool(workers=1) as pool:
            handles = pool.publish_graph_columns("g", graph)
            assert set(handles) == {"edge_u", "edge_v"}
            stats = pool.stats()
            assert stats["columns_republished"] == 2
            assert stats["columns_carried"] == 0

            # Same columns again: everything carries, generations hold.
            again = pool.publish_graph_columns("g", graph)
            stats = pool.stats()
            assert stats["columns_republished"] == 2
            assert stats["columns_carried"] == 2
            assert {name: h.generation for name, h in again.items()} == {
                name: h.generation for name, h in handles.items()
            }

            # A changed graph republishes both edge columns afresh.
            grown = union_of_random_forests(32, arboricity=3, seed=2)
            fresh = pool.publish_graph_columns("g", grown)
            stats = pool.stats()
            assert stats["columns_republished"] == 4
            assert stats["columns_carried"] == 2
            assert all(
                fresh[name].generation > handles[name].generation
                for name in ("edge_u", "edge_v")
            )

    def test_partial_republish_metrics_reach_the_tracer(self):
        from repro.obs import Tracer

        graph = union_of_random_forests(24, arboricity=2, seed=3)
        tracer = Tracer()
        with WorkerPool(workers=1) as pool:
            pool.instrument(tracer)
            pool.publish_graph_columns("g", graph)
            pool.publish_graph_columns("g", graph)
            counters = tracer.metrics.snapshot()["counters"]
            assert counters["shm.columns_republished"] == 2
            assert counters["shm.columns_carried"] == 2

    def test_carried_column_reads_back_identically(self):
        graph = union_of_random_forests(24, arboricity=2, seed=4)
        with WorkerPool(workers=1) as pool:
            pool.publish_graph_columns("g", graph)
            carried = pool.publish_graph_columns("g", graph)
            for name, column in zip(
                ("edge_u", "edge_v"), graph.edge_endpoints
            ):
                assert shm.graph_column(carried[name], name) == column

    def test_instrument_none_restores_the_null_tracer(self):
        from repro.obs import Tracer

        with WorkerPool(workers=1) as pool:
            tracer = Tracer()
            pool.instrument(tracer)
            assert pool.executor._tracer is tracer
            pool.instrument(None)
            assert pool.executor._tracer.enabled is False
            assert pool.registry.metrics.enabled is False

    def test_engine_verify_failure_carries_pool_stats(self):
        from repro.errors import GraphError

        initial = union_of_random_forests(48, arboricity=2, seed=3)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial)

            def boom():
                raise GraphError("invariant broken")

            engine.tenant_service("t").verify = boom
            with pytest.raises(GraphError, match=r"tenant 't'.*\[pool .*tasks_run"):
                engine.verify()


class TestSegmentCleanup:
    def test_pool_close_unlinks_every_segment(self):
        graph, parts = _graph_and_parts()
        pool = WorkerPool(workers=1)
        handle = pool.publish_edge_parts("parts", graph.num_vertices, parts)
        pool.registry.ensure_shared(handle)
        names = pool.registry.segment_names()
        assert names
        assert all(_segment_exists(name) for name in names)
        pool.close()
        assert pool.registry.segment_names() == ()
        assert not any(_segment_exists(name) for name in names)

    def test_derived_pool_close_leaves_the_borrowed_registry_alive(self):
        with WorkerPool(workers=1) as owner:
            derived = WorkerPool(workers=1, registry=owner.registry)
            scope_a = derived.allocate_scope("s-")
            scope_b = owner.allocate_scope("s-")
            assert scope_a != scope_b  # one counter for all co-resident pools
            handle = derived.publish_out_shards(scope_a, [{0: (1, 2)}])
            owner.registry.ensure_shared(handle)
            names = owner.registry.segment_names()
            derived.close()
            # The borrower released nothing it did not own.
            assert owner.registry.segment_names() == names
            assert shm.out_shard(handle, 0) == {0: (1, 2)}
        assert not any(_segment_exists(name) for name in names)

    def test_stream_engine_close_unlinks_its_registry(self):
        initial = union_of_random_forests(48, arboricity=2, seed=3)
        engine = StreamEngine(seed=5)
        engine.add_tenant("t", initial)
        pool = engine.pool
        assert pool is not None  # tenants borrow the engine registry
        handle = pool.publish_out_shards(pool.allocate_scope("probe-"), [{0: (1,)}])
        pool.registry.ensure_shared(handle)
        names = pool.registry.segment_names()
        assert names and all(_segment_exists(name) for name in names)
        engine.close()
        assert pool.registry.segment_names() == ()
        assert not any(_segment_exists(name) for name in names)

    def test_atexit_sweep_reclaims_a_forgotten_owners_segments(self):
        """An owner that exits without ever calling close leaks nothing: the
        module's atexit sweep unlinks whatever the process still owns."""
        script = (
            "from repro.engine.shm import ShardRegistry, publish_out_shards\n"
            "registry = ShardRegistry()\n"
            "handle = publish_out_shards(registry, 'probe', [{0: (1,)}])\n"
            "registry.ensure_shared(handle)\n"
            "print(handle.segment_name)\n"
            "# deliberately no close(): atexit must sweep\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=_subprocess_env(),
        )
        name = result.stdout.strip()
        assert name.startswith("rp")
        assert not _segment_exists(name)
