"""Tests for the superstep executor: backends, ordering, seeds, auto-pick."""

from __future__ import annotations

import pytest

from repro.engine import (
    BACKENDS,
    PROCESS,
    SERIAL,
    THREAD,
    ParallelExecutor,
    derive_seed,
    seed_stream,
)
from repro.errors import ParameterError


def _square(x):
    return x * x


def _add(x, y):
    return x + y


def _boom(x):
    raise ValueError(f"task {x} failed")


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_submission_order(self, backend):
        executor = ParallelExecutor(workers=3, backend=backend)
        assert executor.map(_square, [(i,) for i in range(17)]) == [
            i * i for i in range(17)
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_argument_tasks(self, backend):
        executor = ParallelExecutor(workers=2, backend=backend)
        assert executor.map(_add, [(1, 2), (3, 4), (5, 6)]) == [3, 7, 11]

    @pytest.mark.parametrize("backend", [THREAD, PROCESS])
    def test_task_errors_propagate(self, backend):
        executor = ParallelExecutor(workers=2, backend=backend)
        with pytest.raises(ValueError, match="task 1 failed"):
            executor.map(_boom, [(1,), (2,)])


class TestAutoPick:
    def test_single_worker_is_always_serial(self):
        executor = ParallelExecutor(workers=1, backend=PROCESS)
        assert executor.resolve_backend(100, total_work=10**9) == SERIAL

    def test_single_task_is_always_serial(self):
        executor = ParallelExecutor(workers=8)
        assert executor.resolve_backend(1, total_work=10**9) == SERIAL

    def test_tiny_work_auto_picks_serial(self):
        executor = ParallelExecutor(workers=8)
        assert executor.resolve_backend(4, total_work=100) == SERIAL

    def test_large_work_auto_picks_process(self):
        executor = ParallelExecutor(workers=8)
        assert executor.resolve_backend(4, total_work=10**6) == PROCESS

    def test_explicit_backend_is_honored_on_tiny_work(self):
        executor = ParallelExecutor(workers=8, backend=THREAD)
        assert executor.resolve_backend(4, total_work=100) == THREAD

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            ParallelExecutor(workers=0)
        with pytest.raises(ParameterError):
            ParallelExecutor(workers=2, backend="gpu")


class TestSeedStreams:
    def test_deterministic_and_distinct(self):
        stream = seed_stream(1234, 64)
        assert stream == seed_stream(1234, 64)
        assert len(set(stream)) == 64

    def test_independent_of_worker_count(self):
        # Seeds depend only on (base, index), never on scheduling.
        assert [derive_seed(7, i) for i in range(8)] == seed_stream(7, 8)

    def test_different_bases_diverge(self):
        assert seed_stream(1, 16) != seed_stream(2, 16)

    def test_none_base_allowed(self):
        assert seed_stream(None, 4) == seed_stream(None, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            seed_stream(0, -1)
