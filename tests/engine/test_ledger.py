"""Tests for the sub-ledger fold: rounds = max, volume = sum, memory = sum."""

from __future__ import annotations

import pickle

from repro.engine import SubLedger, fork_ledgers
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import RoundStats


def make_cluster(n=64, m=256) -> MPCCluster:
    return MPCCluster(MPCConfig(num_vertices=n, num_edges=m))


class TestRoundStatsMergeParallel:
    def test_rounds_fold_as_max_not_sum(self):
        parent = RoundStats()
        branches = []
        for depth in (2, 5, 3):
            branch = RoundStats()
            for i in range(depth):
                branch.record_round(f"work-{i}", 10, 4, 4)
            branches.append(branch)
        charged = parent.merge_parallel(branches)
        assert charged == 5
        assert parent.num_rounds == 5  # max, not 2 + 5 + 3

    def test_superstep_volume_is_summed_and_machine_peak_maxed(self):
        a, b = RoundStats(), RoundStats()
        a.record_round("x", 100, 30, 20)
        b.record_round("y", 50, 10, 60)
        parent = RoundStats()
        parent.merge_parallel([a, b])
        record = parent.rounds[0]
        assert record.words_sent == 150
        assert record.max_machine_sent == 30
        assert record.max_machine_received == 60

    def test_superstep_labels_follow_critical_path(self):
        short, long = RoundStats(), RoundStats()
        short.record_round("short-only", 1, 1, 1)
        for i in range(3):
            long.record_round(f"long-{i}", 1, 1, 1)
        parent = RoundStats()
        parent.merge_parallel([short, long])
        assert [r.label for r in parent.rounds] == ["long-0", "long-1", "long-2"]

    def test_memory_peaks_fold_as_sum(self):
        a, b = RoundStats(), RoundStats()
        a.observe_memory(100, 1000)
        b.observe_memory(70, 500)
        parent = RoundStats()
        parent.observe_memory(50, 200)
        parent.merge_parallel([a, b])
        assert parent.peak_machine_memory_words == 170
        assert parent.peak_global_memory_words == 1500

    def test_empty_and_none_branches_are_noops(self):
        parent = RoundStats()
        assert parent.merge_parallel([]) == 0
        assert parent.merge_parallel([None, RoundStats()]) == 0
        assert parent.num_rounds == 0


class TestClusterSubLedger:
    def test_cluster_implements_the_protocol(self):
        assert isinstance(make_cluster(), SubLedger)

    def test_fork_shares_provisioning_with_empty_ledger(self):
        parent = make_cluster()
        parent.charge_rounds(3, label="before")
        child = parent.fork()
        assert child.config is parent.config
        assert child.stats.num_rounds == 0
        assert child.global_memory_in_use() == 0
        child.charge_rounds(1, label="child")
        assert parent.stats.num_rounds == 3  # forks never write through

    def test_fork_round_trips_through_pickle(self):
        child = make_cluster().fork()
        child.charge_rounds(2, label="work")
        child.store_at_key(5, 7, tag="part")
        clone = pickle.loads(pickle.dumps(child))
        assert clone.stats.num_rounds == 2
        assert clone.global_memory_in_use() == 7

    def test_merge_accepts_clusters_and_bare_stats(self):
        parent = make_cluster()
        child = parent.fork()
        child.charge_rounds(4, label="a")
        stats = RoundStats()
        stats.record_round("b", 0, 0, 0)
        assert parent.merge_parallel([child, stats, None]) == 4
        assert parent.stats.num_rounds == 4

    def test_fork_ledgers_helper(self):
        parent = make_cluster()
        forks = fork_ledgers(parent, 3)
        assert len(forks) == 3
        assert all(isinstance(fork, MPCCluster) for fork in forks)
        assert fork_ledgers(None, 2) == [None, None]
