"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import generators
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.union_of_random_forests(128, arboricity=3, seed=5)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "forest", "32", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "# vertices 32" in out
        assert len(out.strip().splitlines()) == 32  # header + 31 edges

    def test_generate_to_file_roundtrips(self, tmp_path):
        path = tmp_path / "gen.txt"
        assert main(["generate", "union_forests", "64", "--seed", "2", "--output", str(path)]) == 0
        graph = read_edge_list(path)
        assert graph.num_vertices == 64


class TestOrient:
    def test_orient_prints_every_edge(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["orient", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == graph.num_edges
        assert "->" in out

    def test_orient_summary_on_stderr(self, graph_file, capsys):
        path, _graph = graph_file
        assert main(["orient", str(path)]) == 0
        err = capsys.readouterr().err
        assert "max outdegree" in err

    def test_orient_to_file(self, graph_file, tmp_path):
        path, graph = graph_file
        out_path = tmp_path / "orientation.txt"
        assert main(["orient", str(path), "--quiet", "--output", str(out_path)]) == 0
        assert len(out_path.read_text().strip().splitlines()) == graph.num_edges


class TestColor:
    def test_color_outputs_one_line_per_vertex(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["color", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == graph.num_vertices

    def test_colors_are_proper(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["color", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        colors = {}
        for line in out.strip().splitlines():
            vertex, value = line.split()
            colors[int(vertex)] = int(value)
        assert all(colors[u] != colors[v] for (u, v) in graph.edges)


class TestLayersAndCoreness:
    def test_layers_command(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["layers", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == graph.num_vertices

    def test_layers_with_explicit_k(self, graph_file, capsys):
        path, _graph = graph_file
        assert main(["layers", str(path), "--k", "8"]) == 0
        err = capsys.readouterr().err
        assert "k=8" in err

    def test_coreness_command(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["coreness", str(path), "--exact"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == graph.num_vertices
        assert "ratio" in captured.err


class TestWorkersAndStream:
    def test_orient_accepts_workers(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["orient", str(path), "--quiet", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == graph.num_edges

    def test_orient_workers_do_not_change_the_output(self, graph_file, capsys):
        path, _graph = graph_file
        assert main(["orient", str(path), "--quiet"]) == 0
        serial = capsys.readouterr().out
        assert main(["orient", str(path), "--quiet", "--workers", "4"]) == 0
        assert capsys.readouterr().out == serial

    def test_stream_accepts_workers(self, capsys):
        assert main([
            "stream", "uniform_churn", "96", "--batches", "3",
            "--batch-size", "40", "--quiet", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# batch")
        assert len(out.strip().splitlines()) == 4  # header + 3 batch rows

    def test_color_workers_do_not_change_the_output(self, graph_file, capsys):
        path, _graph = graph_file
        assert main(["color", str(path), "--quiet"]) == 0
        serial = capsys.readouterr().out
        assert main(["color", str(path), "--quiet", "--workers", "4"]) == 0
        assert capsys.readouterr().out == serial


class TestStreamMulti:
    def test_stream_multi_prints_one_row_per_tick(self, capsys):
        assert main([
            "stream-multi", "96", "--tenants", "3", "--batches", "3",
            "--batch-size", "40", "--quiet", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# tick")
        assert len(out.strip().splitlines()) == 4  # header + 3 tick rows

    def test_stream_multi_summary_reports_the_round_fold(self, capsys):
        assert main([
            "stream-multi", "96", "--tenants", "2", "--batches", "2",
            "--batch-size", "30",
        ]) == 0
        err = capsys.readouterr().err
        assert "max-over-tenants" in err
        assert "policy: serve-all, round budget: unbounded" in err
        assert "uniform_churn-t0" in err
        assert "sliding_window-t1" in err

    def test_stream_multi_budgeted_policy_defers_tenants(self, capsys):
        assert main([
            "stream-multi", "96", "--tenants", "3", "--batches", "2",
            "--batch-size", "30", "--policy", "top-k-backlog", "--topk", "1",
            "--round-budget", "8",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("# tick served deferred backlog")
        assert "policy: top-k-backlog, round budget: 8" in captured.err
        # K=1 under a tight budget must defer somebody and stretch the drain.
        rows = captured.out.strip().splitlines()[1:]
        assert len(rows) > 2
        assert any(int(row.split()[2]) > 0 for row in rows)

    def test_stream_multi_quota_flag_caps_every_tenant(self, capsys):
        from repro.errors import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            main([
                "stream-multi", "96", "--tenants", "2", "--batches", "2",
                "--batch-size", "30", "--quota", "10", "--quiet",
            ])

    def test_stream_multi_checkpoint_then_restore_pins_the_fingerprint(
        self, tmp_path, capsys
    ):
        """The crash-recovery smoke: snapshot a drained fleet, restore it in
        a fresh engine, and require the identical fingerprint digest."""
        ckdir = str(tmp_path / "ck")
        assert main([
            "stream-multi", "--smoke", "--checkpoint-dir", ckdir,
            "--output", str(tmp_path / "t1.txt"),
        ]) == 0
        first = capsys.readouterr().err
        assert (tmp_path / "ck" / "checkpoint.json").exists()
        assert main([
            "stream-multi", "--smoke", "--restore", "--checkpoint-dir", ckdir,
            "--output", str(tmp_path / "t2.txt"),
        ]) == 0
        second = capsys.readouterr().err
        def digest(err):
            for line in err.splitlines():
                if "fingerprint" in line:
                    return line.rsplit(" ", 1)[-1]
            raise AssertionError(f"no fingerprint line in {err!r}")
        assert digest(first) == digest(second)
        assert "restored from" in second

    def test_stream_multi_restore_requires_a_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["stream-multi", "--smoke", "--restore"])


class TestTraceFlag:
    def test_stream_multi_smoke_trace_writes_a_perfetto_payload(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([
            "stream-multi", "--smoke", "--quiet", "--trace", str(trace_path),
            "--output", str(tmp_path / "ticks.txt"),
        ]) == 0
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events
        assert all(
            key in event for event in events for key in ("name", "ph", "ts", "pid", "tid")
        )
        names = {event["name"] for event in events}
        assert {"tick", "tenant", "batch"} <= names
        assert payload["metrics"]["counters"]["engine.ticks"] > 0

    def test_stream_multi_requires_vertices_unless_smoke(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stream-multi", "--quiet"])

    def test_smoke_preset_yields_to_explicit_flags(self, capsys):
        assert main(["stream-multi", "--smoke", "--tenants", "2", "--batches", "2"]) == 0
        err = capsys.readouterr().err
        assert "tenants: 2 (n=96 each)" in err

    def test_stream_trace_does_not_change_the_batch_rows(self, tmp_path, capsys):
        argv = ["stream", "uniform_churn", "96", "--batches", "2", "--batch-size", "30", "--quiet"]
        assert main(argv) == 0
        untraced = capsys.readouterr().out
        trace_path = tmp_path / "trace.json"
        assert main(argv + ["--trace", str(trace_path)]) == 0
        assert capsys.readouterr().out == untraced
        assert trace_path.exists()

    def test_orient_trace_writes_kernel_spans(self, graph_file, tmp_path, capsys):
        import json

        path, _graph = graph_file
        trace_path = tmp_path / "trace.json"
        assert main(["orient", str(path), "--quiet", "--trace", str(trace_path)]) == 0
        names = {
            event["name"]
            for event in json.loads(trace_path.read_text())["traceEvents"]
        }
        assert any(name.startswith("orient:") for name in names)


class TestReportCommands:
    def test_trace_report_renders_span_and_metrics_tables(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main([
            "stream-multi", "--smoke", "--quiet", "--trace", str(trace_path),
            "--output", str(tmp_path / "ticks.txt"),
        ]) == 0
        assert main(["trace-report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace spans" in out
        assert "tick" in out
        assert "engine.ticks" in out

    def test_bench_report_renders_a_trend_table(self, tmp_path, capsys):
        import json

        for stamp, speedup in (("20260101T000000Z", 1.0), ("20260102T000000Z", 3.0)):
            (tmp_path / f"BENCH_demo_{stamp}.json").write_text(
                json.dumps(
                    {
                        "schema": 1,
                        "bench": "demo",
                        "timestamp_utc": stamp,
                        "results": {"speedup": speedup},
                    }
                )
            )
        assert main(["bench-report", str(tmp_path), "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "3.000" in out

    def test_bench_report_fails_on_an_empty_directory(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path)]) == 1
        assert "no benchmark snapshots" in capsys.readouterr().err


class TestExperimentCommand:
    def test_experiment_e3_prints_the_table(self, capsys):
        # S2's registry sweep is sized for benchmarks; the CLI path is the
        # same for every id, so exercise the cheapest harness-backed one.
        assert main(["experiment", "E3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "rounds_ours" in out
        assert "union_forests" in out

    def test_experiment_markdown_output(self, tmp_path, capsys):
        out_path = tmp_path / "table.md"
        assert main([
            "experiment", "E3", "--markdown", "--quiet", "--output", str(out_path),
        ]) == 0
        content = out_path.read_text()
        assert content.startswith("### E3")
        assert "| workload |" in content

    def test_experiment_s3_prints_the_table(self, capsys):
        assert main(["experiment", "S3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "round_savings" in out
        assert "multi_tenant" in out

    def test_experiment_rejects_unrunnable_ids(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "E4"])

    def test_experiment_trace_covers_the_whole_sweep(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["experiment", "E3", "--quiet", "--trace", str(trace_path)]) == 0
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        assert payload["metrics"]["counters"]["mpc.rounds"] > 0
