"""Tests for the claim validators."""

from __future__ import annotations

import math

import pytest

from repro.analysis.validators import (
    ValidationError,
    check_all,
    validate_coloring_quality,
    validate_global_memory,
    validate_hpartition_out_degree,
    validate_layer_decay,
    validate_local_memory,
    validate_orientation_quality,
    validate_partial_assignment,
    validate_round_complexity,
    validate_tree_budget,
    validate_tree_mappings,
)
from repro.core.layering import UNASSIGNED, PartialLayerAssignment
from repro.core.parameters import Parameters
from repro.core.tree_view import TreeView
from repro.graph import generators
from repro.graph.coloring import Coloring
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.mpc.metrics import RoundStats


class TestQualityValidators:
    def test_orientation_quality_pass_and_fail(self, small_star):
        good = Orientation.from_layering(small_star, {0: 2, **{v: 1 for v in range(1, 9)}})
        assert validate_orientation_quality(good, 1, small_star.num_vertices).passed
        bad = Orientation(small_star, {(0, v): v for v in range(1, 9)})
        report = validate_orientation_quality(bad, 1, small_star.num_vertices, constant=2.0)
        assert not report.passed
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_coloring_quality_requires_properness(self, triangle):
        improper = Coloring(triangle, {0: 0, 1: 0, 2: 1})
        assert not validate_coloring_quality(improper, 2, 3).passed
        proper = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        assert validate_coloring_quality(proper, 2, 3).passed

    def test_round_complexity(self):
        assert validate_round_complexity(5, 1_000_000).passed
        assert not validate_round_complexity(10_000, 1_000_000).passed

    def test_headroom(self):
        report = validate_round_complexity(0, 100)
        assert report.headroom == math.inf


class TestStructureValidators:
    def test_hpartition_out_degree(self, small_star):
        partition = HPartition(small_star, {0: 2, **{v: 1 for v in range(1, 9)}})
        assert validate_hpartition_out_degree(partition, 1).passed
        assert not validate_hpartition_out_degree(partition, 0).passed

    def test_layer_decay(self, small_path):
        good = HPartition(small_path, {0: 1, 1: 1, 2: 1, 3: 2, 4: 3})
        assert validate_layer_decay(good, slack=1.5).passed
        bad = HPartition(small_path, {v: 4 for v in small_path.vertices})
        assert not validate_layer_decay(bad, slack=1.0).passed

    def test_partial_assignment_validator(self, small_star):
        layer_of = {0: 1.0, **{v: 2.0 for v in range(1, 9)}}
        bad = PartialLayerAssignment(small_star, layer_of, num_layers=2, out_degree=2)
        assert not validate_partial_assignment(bad).passed
        good = PartialLayerAssignment(
            small_star, {0: 2.0, **{v: 1.0 for v in range(1, 9)}}, num_layers=2, out_degree=2
        )
        assert validate_partial_assignment(good).passed

    def test_tree_validators(self, small_star):
        params = Parameters(k=2, budget=16, steps=2, num_layers=2)
        trees = {0: TreeView.star_of_neighbors(small_star, 0)}  # 9 nodes
        assert validate_tree_budget(trees, params).passed
        params_small = Parameters(k=2, budget=8, steps=2, num_layers=2)
        assert not validate_tree_budget(trees, params_small).passed
        assert validate_tree_mappings(small_star, trees).passed
        bad_tree = TreeView(vertex_of=[1, 2], parent=[-1, 0])  # leaf-leaf is not an edge
        assert not validate_tree_mappings(small_star, {1: bad_tree}).passed


class TestResourceValidators:
    def test_local_memory(self):
        stats = RoundStats()
        stats.observe_memory(100, 1000)
        assert validate_local_memory(stats, num_vertices=1024, budget=64, delta=0.5).passed
        stats.observe_memory(10**9, 10**9)
        assert not validate_local_memory(stats, num_vertices=1024, budget=64, delta=0.5).passed

    def test_global_memory(self):
        stats = RoundStats()
        stats.observe_memory(10, 500)
        assert validate_global_memory(stats, num_vertices=100, num_edges=200, budget=16).passed
        stats.observe_memory(10, 10**9)
        assert not validate_global_memory(stats, num_vertices=100, num_edges=200, budget=16).passed

    def test_check_all_raises_on_failure(self):
        ok = validate_round_complexity(1, 100)
        bad = validate_round_complexity(10**6, 100)
        with pytest.raises(ValidationError):
            check_all([ok, bad])
        check_all([ok])
