"""Tests for the statistics helpers and table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import Table
from repro.analysis.stats import geometric_mean, growth_exponent, ratio_series, summarize


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_single_value(self):
        summary = summarize([4.0])
        assert summary.mean == 4.0
        assert summary.std == 0.0

    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(1.2909944, rel=1e-5)
        assert set(summary.as_dict()) == {"count", "mean", "std", "min", "max"}


class TestOtherHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0

    def test_ratio_series_skips_zero_denominators(self):
        assert ratio_series([2.0, 3.0, 4.0], [1.0, 0.0, 2.0]) == [2.0, 2.0]

    def test_growth_exponent_linear(self):
        sizes = [10.0, 100.0, 1000.0]
        values = [2.0, 20.0, 200.0]
        assert growth_exponent(sizes, values) == pytest.approx(1.0, abs=1e-6)

    def test_growth_exponent_flat(self):
        sizes = [10.0, 100.0, 1000.0]
        values = [5.0, 5.0, 5.0]
        assert growth_exponent(sizes, values) == pytest.approx(0.0, abs=1e-6)

    def test_growth_exponent_degenerate(self):
        assert growth_exponent([10.0], [5.0]) == 0.0


class TestTable:
    def test_add_row_by_mapping_and_sequence(self):
        table = Table("demo", ["a", "b"])
        table.add_row({"a": 1, "b": 2.5})
        table.add_row([3, "x"])
        assert table.rows == [["1", "2.500"], ["3", "x"]]

    def test_add_row_rejects_wrong_length(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_markdown_rendering(self):
        table = Table("demo", ["a", "b"])
        table.add_row({"a": 1, "b": 2})
        markdown = table.to_markdown()
        assert "### demo" in markdown
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown

    def test_ascii_rendering(self, capsys):
        table = Table("demo", ["col"])
        table.add_row({"col": "value"})
        table.print()
        captured = capsys.readouterr()
        assert "demo" in captured.out
        assert "value" in captured.out

    def test_integer_like_floats_rendered_without_decimals(self):
        table = Table("demo", ["x"])
        table.add_row({"x": 3.0})
        assert table.rows[0][0] == "3"
