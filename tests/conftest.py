"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro import kernels
from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests."""
    return random.Random(12345)


@pytest.fixture(
    params=[
        kernels.PURE,
        pytest.param(
            kernels.NUMPY,
            marks=pytest.mark.skipif(
                not kernels.numpy_available(), reason="numpy not importable"
            ),
        ),
    ]
)
def kernel_backend(request) -> str:
    """Run the test once per kernel backend (numpy leg skipped when absent).

    Selects the backend process-wide for the test body, so determinism
    matrices gain the kernel dimension by just taking this fixture.
    """
    with kernels.use_backend(request.param):
        yield request.param


@pytest.fixture
def triangle() -> Graph:
    """The triangle K3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_path() -> Graph:
    """A path on five vertices."""
    return generators.path(5)


@pytest.fixture
def small_star() -> Graph:
    """A star with eight leaves."""
    return generators.star(8)


@pytest.fixture
def small_forest() -> Graph:
    """A random forest on 64 vertices (λ = 1)."""
    return generators.random_forest(64, num_trees=4, seed=7)


@pytest.fixture
def union_forest_graph() -> Graph:
    """A union of 3 random spanning forests on 128 vertices (λ ≤ 3)."""
    return generators.union_of_random_forests(128, arboricity=3, seed=11)


@pytest.fixture
def power_law_graph() -> Graph:
    """A small power-law graph with high-degree hubs."""
    return generators.chung_lu_power_law(256, exponent=2.3, average_degree=6.0, seed=13)


@pytest.fixture
def dense_community_graph() -> Graph:
    """A planted dense subgraph instance (λ ≫ log n at this scale)."""
    return generators.planted_dense_subgraph(
        200, community_size=70, community_probability=0.7, background_probability=0.02, seed=17
    )


# --------------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------------- #


@st.composite
def graphs(draw, max_vertices: int = 24, max_edge_fraction: float = 0.5):
    """Random small graphs for property-based tests."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    max_edges = int(len(possible) * max_edge_fraction)
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    local = random.Random(seed)
    local.shuffle(possible)
    return Graph(n, possible[:edge_count])


@st.composite
def forests(draw, max_vertices: int = 32):
    """Random forests for property-based tests (λ = 1)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    trees = draw(st.integers(min_value=1, max_value=max(n // 4, 1)))
    return generators.random_forest(n, num_trees=trees, seed=seed)
