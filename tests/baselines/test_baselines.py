"""Tests for the prior-work baselines."""

from __future__ import annotations

import pytest

from repro.baselines.be_mpc import barenboim_elkin_in_mpc
from repro.baselines.forest import forest_orient_and_color
from repro.baselines.glm19 import glm19_orientation, phase_length_for
from repro.baselines.greedy import degeneracy_order_coloring, greedy_delta_coloring
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.arboricity import degeneracy


class TestBarenboimElkinInMPC:
    def test_outdegree_bound(self, union_forest_graph):
        result = barenboim_elkin_in_mpc(union_forest_graph, arboricity=3)
        assert result.max_outdegree <= result.threshold
        assert result.rounds >= 1

    def test_rejects_negative_arboricity(self, small_forest):
        with pytest.raises(ParameterError):
            barenboim_elkin_in_mpc(small_forest, arboricity=-1)

    def test_rounds_track_peeling_depth(self):
        shallow = generators.complete_ary_tree(4, 256)
        deep = generators.complete_ary_tree(4, 16384)
        assert (
            barenboim_elkin_in_mpc(deep, arboricity=1).rounds
            > barenboim_elkin_in_mpc(shallow, arboricity=1).rounds
        )

    def test_partition_covers_all_vertices(self, union_forest_graph):
        result = barenboim_elkin_in_mpc(union_forest_graph, arboricity=3)
        assert set(result.partition.layer_of) == set(union_forest_graph.vertices)


class TestGLM19:
    def test_phase_length_grows_slowly(self):
        assert phase_length_for(2**16) == 4
        assert phase_length_for(2**25) == 5

    def test_output_matches_peeling_quality(self, union_forest_graph):
        result = glm19_orientation(union_forest_graph, arboricity=3)
        assert result.max_outdegree <= 8  # threshold (2.5 * 3) rounded up
        assert result.phases >= 1
        assert result.local_rounds_simulated >= result.phases

    def test_rounds_grow_slower_than_local_simulation(self):
        graph = generators.complete_ary_tree(4, 16384)
        glm = glm19_orientation(graph, arboricity=1)
        local = barenboim_elkin_in_mpc(graph, arboricity=1)
        # GLM19 simulates the same number of LOCAL iterations but packs each
        # phase of √log n of them into O(log log n) MPC rounds.
        assert glm.local_rounds_simulated >= local.rounds - 1
        assert glm.phases <= local.rounds

    def test_rejects_negative_arboricity(self, small_forest):
        with pytest.raises(ParameterError):
            glm19_orientation(small_forest, arboricity=-1)


class TestGreedyBaselines:
    def test_delta_coloring_proper(self, power_law_graph):
        coloring = greedy_delta_coloring(power_law_graph)
        assert coloring.is_proper()
        assert coloring.num_colors() <= power_law_graph.max_degree() + 1

    def test_degeneracy_coloring_proper_and_small(self, power_law_graph):
        coloring = degeneracy_order_coloring(power_law_graph)
        assert coloring.is_proper()
        assert coloring.num_colors() <= degeneracy(power_law_graph) + 1

    def test_degeneracy_coloring_beats_delta_on_stars(self, small_star):
        assert degeneracy_order_coloring(small_star).num_colors() == 2
        assert greedy_delta_coloring(small_star).num_colors() == 2


class TestForestBaseline:
    def test_rejects_non_forest(self, triangle):
        with pytest.raises(ParameterError):
            forest_orient_and_color(triangle)

    def test_forest_guarantees(self, small_forest):
        result = forest_orient_and_color(small_forest)
        assert result.max_outdegree <= 2
        assert result.num_colors <= 3
        assert result.coloring.is_proper()
        assert result.rounds >= 1

    def test_deep_tree_rounds_stay_small(self):
        graph = generators.complete_ary_tree(4, 16384)
        result = forest_orient_and_color(graph)
        local = barenboim_elkin_in_mpc(graph, arboricity=1)
        assert result.max_outdegree <= 2
        assert result.rounds <= local.rounds + 4

    def test_path_coloring(self):
        graph = generators.path(100)
        result = forest_orient_and_color(graph)
        assert result.num_colors <= 3
        assert result.coloring.is_proper()
