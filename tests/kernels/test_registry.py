"""Kernel backend registry: selection order, fallback, and loud typos."""

from __future__ import annotations

import pytest

from repro import kernels
from repro.errors import ParameterError


@pytest.fixture(autouse=True)
def _reset_selection():
    """Leave the process-wide selection untouched for other tests."""
    previous = kernels._selected
    yield
    kernels._selected = previous


class TestSelection:
    def test_default_is_pure(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        kernels.set_backend(None)
        assert kernels.active_backend() == kernels.PURE

    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, kernels.NUMPY)
        kernels.set_backend(None)
        expected = kernels.NUMPY if kernels.numpy_available() else kernels.PURE
        assert kernels.active_backend() == expected

    def test_explicit_selection_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, kernels.NUMPY)
        kernels.set_backend(kernels.PURE)
        assert kernels.active_backend() == kernels.PURE

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        kernels.set_backend(None)
        with pytest.raises(ParameterError, match=kernels.ENV_VAR):
            kernels.active_backend()

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "")
        kernels.set_backend(None)
        assert kernels.active_backend() == kernels.PURE

    def test_numpy_falls_back_to_pure_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_ok", False)
        kernels.set_backend(kernels.NUMPY)
        assert kernels.active_backend() == kernels.PURE
        assert kernels.available_backends() == (kernels.PURE,)

    def test_use_backend_restores_previous_selection(self):
        kernels.set_backend(kernels.PURE)
        with kernels.use_backend(kernels.NUMPY) as resolved:
            assert resolved in kernels.BACKENDS
        assert kernels.active_backend() == kernels.PURE

    def test_use_backend_yields_the_resolved_backend(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_ok", False)
        with kernels.use_backend(kernels.NUMPY) as resolved:
            assert resolved == kernels.PURE

    def test_dispatcher_accepts_explicit_backend_argument(self):
        from array import array

        heads = kernels.orient_by_rank(
            array("l", [0]), array("l", [1]), [5, 3], backend=kernels.PURE
        )
        assert list(heads) == [0]
