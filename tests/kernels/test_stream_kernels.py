"""Pure ≡ numpy byte-identity for the streaming data-plane kernels (ISSUE 9).

Covers the columnar journal merge (``compact_journal``), batch
pre-validation (``validate_batch``, including the exact exception type,
message and first-offender order), the recolor scan (``first_monochrome``),
CSR assembly (``build_csr``) and the small column reducers the tick stats
read (``max_value`` / ``count_distinct`` / ``encode_edge_keys``) — on
randomized churn traces, the same style as ``test_equivalence.py``: one
dispatcher call per backend on identical inputs, exactly equal outputs,
container types included.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro import kernels
from repro.errors import GraphError
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not importable"
)


def both(kernel_name, *args, **kwargs):
    """Run one dispatcher on both backends; return (pure_result, numpy_result)."""
    dispatcher = getattr(kernels, kernel_name)
    return (
        dispatcher(*args, backend=kernels.PURE, **kwargs),
        dispatcher(*args, backend=kernels.NUMPY, **kwargs),
    )


def both_raise(kernel_name, *args, **kwargs):
    """Both backends must raise; return the two exceptions."""
    dispatcher = getattr(kernels, kernel_name)
    errors = []
    for backend in (kernels.PURE, kernels.NUMPY):
        with pytest.raises(GraphError) as info:
            dispatcher(*args, backend=backend, **kwargs)
        errors.append(info.value)
    return errors


def _columns(pairs):
    us = array("l", (u for u, _ in pairs))
    vs = array("l", (v for _, v in pairs))
    return us, vs


def _random_journal(n, base_edges, length, seed):
    """A legal random op journal over a base edge set: inserts of absent
    canonical edges, deletes of live ones, re-inserts after deletes."""
    rng = random.Random(seed)
    live = set(base_edges)
    ops, us, vs = array("l"), array("l"), array("l")
    while len(ops) < length:
        if live and rng.random() < 0.45:
            e = sorted(live)[rng.randrange(len(live))]
            live.discard(e)
            op = 0
        else:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in live:
                continue
            live.add(e)
            op = 1
        ops.append(op)
        us.append(e[0])
        vs.append(e[1])
    return (ops, us, vs), live


class TestReducers:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_max_value_and_count_distinct(self, seed):
        rng = random.Random(seed)
        column = array("l", (rng.randrange(50) for _ in range(400)))
        assert both("max_value", column) == (max(column), max(column))
        pure, numpy = both("count_distinct", column)
        assert pure == numpy == len(set(column))
        assert isinstance(numpy, int)

    def test_empty_columns(self):
        empty = array("l")
        assert both("max_value", empty) == (0, 0)
        assert both("count_distinct", empty) == (0, 0)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_encode_edge_keys(self, seed):
        graph = union_of_random_forests(120, arboricity=3, seed=seed)
        pure, numpy = both("encode_edge_keys", 120, *graph.edge_endpoints)
        assert type(numpy) is array and numpy.typecode == "l"
        assert pure == numpy
        assert pure.tobytes() == numpy.tobytes()


class TestBuildCsr:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_byte_identical(self, seed):
        n = 150
        graph = union_of_random_forests(n, arboricity=2 + seed % 3, seed=seed)
        pure, numpy = both("build_csr", n, *graph.edge_endpoints)
        for p, q in zip(pure, numpy):
            assert type(q) is array and q.typecode == "l"
            assert p == q and p.tobytes() == q.tobytes()

    def test_edgeless_and_empty(self):
        empty = array("l")
        for n in (0, 1, 7):
            pure, numpy = both("build_csr", n, empty, empty)
            assert pure == numpy
            assert list(pure[0]) == [0] * (n + 1) and len(pure[1]) == 0

    def test_slices_are_sorted_neighbor_lists(self):
        graph = union_of_random_forests(80, arboricity=3, seed=6)
        indptr, indices = kernels.build_csr(
            80, *graph.edge_endpoints, backend=kernels.NUMPY
        )
        for v in range(80):
            slice_ = list(indices[indptr[v] : indptr[v + 1]])
            assert slice_ == sorted(graph.neighbors(v))


class TestFirstMonochrome:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_scans_agree(self, seed):
        rng = random.Random(seed)
        colors = array("l", (rng.randrange(4) for _ in range(60)))
        pairs = [
            (rng.randrange(60), rng.randrange(60)) for _ in range(80)
        ]
        us, vs = _columns(pairs)
        for start in (0, 1, 40, 79, 80):
            pure, numpy = both("first_monochrome", colors, us, vs, start)
            assert pure == numpy
            assert isinstance(numpy, int)
        # Walk the scan the way the batch recolor loop does.
        start = 0
        seen = []
        while True:
            i = kernels.first_monochrome(colors, us, vs, start, backend=kernels.NUMPY)
            j = kernels.first_monochrome(colors, us, vs, start, backend=kernels.PURE)
            assert i == j
            if i < 0:
                break
            seen.append(i)
            start = i + 1
        assert seen == [
            k for k, (u, v) in enumerate(pairs) if colors[u] == colors[v]
        ]


class TestCompactJournal:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_traces_byte_identical(self, seed):
        n = 90
        base = union_of_random_forests(n, arboricity=2, seed=seed)
        base_u, base_v = base.edge_endpoints
        journal, live = _random_journal(n, base.edges, 300, seed)
        pure, numpy = both("compact_journal", n, base_u, base_v, *journal)
        for p, q in zip(pure, numpy):
            assert type(q) is array and q.typecode == "l"
            assert p == q and p.tobytes() == q.tobytes()
        assert Graph._from_columns(n, *numpy) == Graph(n, sorted(live))

    def test_tombstone_only_journal(self):
        base = union_of_random_forests(40, arboricity=2, seed=7)
        doomed = list(base.edges)[::2]
        ops = array("l", [0] * len(doomed))
        us, vs = _columns(doomed)
        pure, numpy = both(
            "compact_journal", 40, *base.edge_endpoints, ops, us, vs
        )
        assert pure == numpy
        survivors = [e for e in base.edges if e not in set(doomed)]
        assert list(zip(*pure)) == survivors

    def test_empty_journal_returns_base_columns(self):
        base = union_of_random_forests(30, arboricity=1, seed=8)
        empty = array("l")
        pure, numpy = both(
            "compact_journal", 30, *base.edge_endpoints, empty, empty, empty
        )
        assert pure == numpy
        assert pure[0] == base.edge_endpoints[0]
        assert pure[1] == base.edge_endpoints[1]


class TestValidateBatch:
    """Exception parity: same type, same message, same first offender."""

    @staticmethod
    def _live_keys(n, graph, seed, churn=30):
        """Key columns of a DynamicGraph mid-overlay (base/added/removed)."""
        dg = DynamicGraph(graph, min_compaction_journal=2**60)
        rng = random.Random(seed)
        live = set(graph.edges)
        for _ in range(churn):
            if live and rng.random() < 0.5:
                e = sorted(live)[rng.randrange(len(live))]
                dg.remove_edge(*e)
                live.discard(e)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                e = (min(u, v), max(u, v))
                if u == v or e in live:
                    continue
                dg.add_edge(u, v)
                live.add(e)
        return dg, dg.base_edge_keys(), *dg.overlay_edge_keys()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_legal_batches_return_none_on_both(self, seed):
        n = 70
        graph = union_of_random_forests(n, arboricity=2, seed=seed)
        dg, base_keys, added, removed = self._live_keys(n, graph, seed)
        journal, _ = _random_journal(
            n, list(dg.edges()), 60, seed + 100
        )
        assert both(
            "validate_batch", n, *journal, base_keys, added, removed
        ) == (None, None)

    def test_out_of_range_message_parity(self):
        n = 50
        graph = union_of_random_forests(n, arboricity=2, seed=3)
        _, base_keys, added, removed = self._live_keys(n, graph, 3)
        ops = array("l", [1, 1])
        us = array("l", [1, 49])
        vs = array("l", [n + 3, 50])
        errors = both_raise(
            "validate_batch", n, ops, us, vs, base_keys, added, removed
        )
        assert str(errors[0]) == str(errors[1])
        assert str(errors[0]) == (
            f"batch update #0: edge (1, {n + 3}) references a vertex outside 0..{n - 1}"
        )

    def test_duplicate_insert_message_parity(self):
        n = 50
        graph = union_of_random_forests(n, arboricity=2, seed=4)
        _, base_keys, added, removed = self._live_keys(n, graph, 4)
        u, v = next(iter(zip(*graph.edge_endpoints)))
        ops = array("l", [1])
        errors = both_raise(
            "validate_batch", n, ops, array("l", [u]), array("l", [v]),
            base_keys, added, removed,
        )
        assert str(errors[0]) == str(errors[1])
        assert f"insert of live edge ({u}, {v})" in str(errors[0])

    def test_dead_delete_message_parity(self):
        n = 50
        graph = union_of_random_forests(n, arboricity=2, seed=5)
        _, base_keys, added, removed = self._live_keys(n, graph, 5)
        dead = next(
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if a * n + b not in set(base_keys)
            and a * n + b not in set(added)
        )
        ops = array("l", [0])
        errors = both_raise(
            "validate_batch", n, ops, array("l", [dead[0]]), array("l", [dead[1]]),
            base_keys, added, removed,
        )
        assert str(errors[0]) == str(errors[1])
        assert f"delete of dead edge {dead}" in str(errors[0])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_first_offender_parity_on_random_illegal_batches(self, seed):
        """Corrupt a random position of a legal batch; both backends must
        blame the same (earliest) update with the same message."""
        n = 60
        rng = random.Random(seed)
        graph = union_of_random_forests(n, arboricity=2, seed=seed)
        dg, base_keys, added, removed = self._live_keys(n, graph, seed)
        journal, _ = _random_journal(n, list(dg.edges()), 40, seed + 7)
        ops, us, vs = (array("l", c) for c in journal)
        for position in sorted(rng.sample(range(40), 3)):
            ops[position] = 1 - ops[position]  # insert↔delete flips legality
        errors = both_raise(
            "validate_batch", n, ops, us, vs, base_keys, added, removed
        )
        assert type(errors[0]) is type(errors[1]) is GraphError
        assert str(errors[0]) == str(errors[1])
