"""Pure ≡ numpy byte-identity, kernel by kernel, on randomized inputs.

Every test calls the *same dispatcher* once per backend on the same inputs
and requires exactly equal outputs — container types included (``array('l')``
columns, tuples, python-int lists) — and, where a kernel raises, the exact
same exception type and message.  The whole module is skipped on hosts
without numpy: equivalence against an absent backend is vacuous (the
fallback itself is covered by the registry tests).
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro import kernels
from repro.errors import GraphError, InvalidOrientationError
from repro.graph.generators import (
    planted_dense_subgraph,
    union_of_random_forests,
)
from repro.stream.updates import EdgeUpdate

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not importable"
)

GRAPHS = [
    union_of_random_forests(300, arboricity=3, seed=5),
    planted_dense_subgraph(
        200,
        community_size=60,
        community_probability=0.6,
        background_probability=0.03,
        seed=9,
    ),
]


def both(kernel_name, *args, **kwargs):
    """Run one dispatcher on both backends; return (pure_result, numpy_result)."""
    dispatcher = getattr(kernels, kernel_name)
    return (
        dispatcher(*args, backend=kernels.PURE, **kwargs),
        dispatcher(*args, backend=kernels.NUMPY, **kwargs),
    )


def both_raise(kernel_name, *args, **kwargs):
    """Both backends must raise; returns the two exceptions for comparison."""
    dispatcher = getattr(kernels, kernel_name)
    with pytest.raises(Exception) as pure_err:
        dispatcher(*args, backend=kernels.PURE, **kwargs)
    with pytest.raises(Exception) as numpy_err:
        dispatcher(*args, backend=kernels.NUMPY, **kwargs)
    return pure_err.value, numpy_err.value


class TestPeel:
    @pytest.mark.parametrize("graph", GRAPHS, ids=["forests", "dense"])
    @pytest.mark.parametrize("threshold", [0, 1, 3, 8, 50])
    @pytest.mark.parametrize("max_rounds", [None, 0, 1, 2])
    def test_layers_and_rounds_identical(self, graph, threshold, max_rounds):
        pure, vec = both(
            "peel_layers",
            graph.num_vertices,
            graph.csr_indptr,
            graph.csr_indices,
            graph.degrees,
            threshold,
            max_rounds,
        )
        assert pure == vec
        assert isinstance(vec[0], array) and vec[0].typecode == "l"

    def test_empty_graph(self):
        pure, vec = both("peel_layers", 0, array("l", [0]), array("l"), (), 3, None)
        assert pure == vec == (array("l"), 0)


class TestOrientAndTally:
    @pytest.mark.parametrize("graph", GRAPHS, ids=["forests", "dense"])
    def test_heads_identical_for_list_mapping_and_float_ranks(self, graph):
        edge_u, edge_v = graph.edge_endpoints
        rng = random.Random(31)
        int_ranks = [rng.randrange(50) for _ in range(graph.num_vertices)]
        for ranks in (
            int_ranks,
            dict(enumerate(int_ranks)),
            [r + 0.5 for r in int_ranks],
        ):
            pure, vec = both("orient_by_rank", edge_u, edge_v, ranks)
            assert pure == vec
            assert isinstance(vec, array) and vec.typecode == "l"

    @pytest.mark.parametrize("graph", GRAPHS, ids=["forests", "dense"])
    def test_tallies_identical(self, graph):
        edge_u, edge_v = graph.edge_endpoints
        heads = kernels.orient_by_rank(
            edge_u, edge_v, list(range(graph.num_vertices))
        )
        pure, vec = both("tally_outdegrees", graph.num_vertices, edge_u, edge_v, heads)
        assert pure == vec
        assert isinstance(vec, tuple) and all(isinstance(x, int) for x in vec)

    def test_tally_first_offender_message_identical(self):
        graph = GRAPHS[0]
        edge_u, edge_v = graph.edge_endpoints
        heads = kernels.orient_by_rank(edge_u, edge_v, list(range(graph.num_vertices)))
        corrupt = array("l", heads)
        # Two bad heads; the *first* must be the one reported by both.
        corrupt[7] = graph.num_vertices + 7
        corrupt[100] = graph.num_vertices + 100
        pure_err, numpy_err = both_raise(
            "tally_outdegrees", graph.num_vertices, edge_u, edge_v, corrupt
        )
        assert isinstance(pure_err, InvalidOrientationError)
        assert type(pure_err) is type(numpy_err)
        assert str(pure_err) == str(numpy_err)


class TestMerge:
    @pytest.mark.parametrize("graph", GRAPHS, ids=["forests", "dense"])
    def test_disjoint_interleaved_split_merges_identically(self, graph):
        edge_u, edge_v = graph.edge_endpoints
        heads = kernels.orient_by_rank(edge_u, edge_v, list(range(graph.num_vertices)))
        args = (
            graph.num_vertices,
            edge_u[0::2], edge_v[0::2], heads[0::2],
            edge_u[1::2], edge_v[1::2], heads[1::2],
        )
        pure, vec = both("merge_oriented_columns", *args)
        assert pure == vec
        assert pure[0] == edge_u and pure[1] == edge_v and pure[2] == heads
        assert pure[3] == 0

    def test_overlap_counts_identically(self):
        graph = GRAPHS[0]
        edge_u, edge_v = graph.edge_endpoints
        heads = kernels.orient_by_rank(edge_u, edge_v, list(range(graph.num_vertices)))
        # Full overlap: merging the columns with themselves.
        pure, vec = both(
            "merge_oriented_columns",
            graph.num_vertices,
            edge_u, edge_v, heads,
            edge_u, edge_v, heads,
        )
        assert pure == vec == (None, None, None, graph.num_edges)

    def test_empty_sides(self):
        empty = array("l")
        pure, vec = both(
            "merge_oriented_columns", 5, empty, empty, empty, empty, empty, empty
        )
        assert pure == vec
        assert pure[3] == 0 and len(pure[0]) == 0


class TestSmallReductions:
    def test_sum_counts(self):
        rng = random.Random(2)
        a = tuple(rng.randrange(10) for _ in range(64))
        b = tuple(rng.randrange(10) for _ in range(64))
        pure, vec = both("sum_counts", a, b)
        assert pure == vec
        assert all(isinstance(x, int) for x in vec)
        assert both("sum_counts", (), ()) == ((), ())

    def test_min_value(self):
        assert both("min_value", array("l", [4, -2, 9])) == (-2, -2)
        assert both("min_value", array("l")) == (0, 0)

    def test_max_and_sum_sizes(self):
        collections = [set(range(k)) for k in (0, 3, 7, 1)]
        assert both("max_sizes", collections) == (7, 7)
        assert both("sum_sizes", collections) == (11, 11)
        assert both("max_sizes", []) == (0, 0)
        assert both("sum_sizes", []) == (0, 0)


class TestPaletteAssembly:
    def test_random_parts_identical(self):
        rng = random.Random(77)
        n = 150
        vertices = list(range(n))
        rng.shuffle(vertices)
        parts = []
        cursor = 0
        while cursor < n:
            size = rng.randrange(1, 25)
            parents = tuple(sorted(vertices[cursor : cursor + size]))
            colors = array("l", [rng.randrange(6) for _ in parents])
            parts.append((parents, colors, rng.randrange(1, 9)))
            cursor += size
        pure, vec = both("assemble_color_columns", n, parts)
        assert pure == vec
        column, offsets = pure
        assert isinstance(vec[0], array) and vec[0].typecode == "l"
        assert offsets[0] == 0 and len(offsets) == len(parts) + 1
        assert offsets == [
            sum(p[2] for p in parts[:i]) for i in range(len(parts) + 1)
        ]
        assert min(column) >= 0  # the shuffled parts cover every vertex

    def test_uncovered_vertices_keep_the_sentinel(self):
        parts = [((1, 3), array("l", [2, 0]), 4)]
        pure, vec = both("assemble_color_columns", 5, parts)
        assert pure == vec
        assert list(pure[0]) == [-1, 2, -1, 0, -1]
        assert pure[1] == [0, 4]

    def test_no_parts(self):
        pure, vec = both("assemble_color_columns", 3, [])
        assert pure == vec == (array("l", [-1, -1, -1]), [0])


def _reference_choose_tail(u, v, du, dv):
    return u if du <= dv else v


def _random_group(rng, vertices, shard):
    """A random, *legal* update sequence over one conflict group's vertices."""
    live = {
        (min(v, h), max(v, h)) for v, heads in shard.items() for h in heads
    }
    updates = []
    for _ in range(40):
        u, v = rng.sample(vertices, 2)
        e = (min(u, v), max(u, v))
        if e in live:
            live.discard(e)
            updates.append(EdgeUpdate("-", u, v))
        else:
            live.add(e)
            updates.append(EdgeUpdate("+", u, v))
    return updates


class TestFlipRepairGroup:
    def test_random_groups_identical(self):
        rng = random.Random(123)
        vertices = list(range(10))
        for trial in range(20):
            shard = {}
            live = set()
            for v in vertices:
                heads = rng.sample([w for w in vertices if w != v], rng.randrange(3))
                heads = [h for h in heads if (min(v, h), max(v, h)) not in live]
                live.update((min(v, h), max(v, h)) for h in heads)
                shard[v] = tuple(sorted(heads))
            updates = _random_group(rng, vertices, shard)
            pure, vec = both(
                "flip_repair_group", shard, updates, 100, _reference_choose_tail
            )
            assert pure == vec, f"trial {trial} diverged"
            new_shard, freed = pure
            assert all(isinstance(h, int) for hs in vec[0].values() for h in hs)
            assert all(heads == sorted(heads) for heads in new_shard.values())

    def test_error_messages_identical(self):
        shard = {0: (1,), 1: (), 2: ()}
        cases = [
            # Insert of an edge the shard already orients.
            [EdgeUpdate("+", 0, 1)],
            # Delete of an edge nobody orients.
            [EdgeUpdate("-", 1, 2)],
        ]
        for updates in cases:
            pure_err, numpy_err = both_raise(
                "flip_repair_group", shard, updates, 10, _reference_choose_tail
            )
            assert isinstance(pure_err, GraphError)
            assert type(pure_err) is type(numpy_err)
            assert str(pure_err) == str(numpy_err)

    def test_cap_overflow_message_identical(self):
        shard = {0: (), 1: (), 2: (), 3: ()}
        updates = [EdgeUpdate("+", 0, 1), EdgeUpdate("+", 0, 2), EdgeUpdate("+", 0, 3)]
        pure_err, numpy_err = both_raise(
            "flip_repair_group", shard, updates, 1, lambda u, v, du, dv: u
        )
        assert "cap overflow" in str(pure_err)
        assert str(pure_err) == str(numpy_err)
