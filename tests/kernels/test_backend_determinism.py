"""End-to-end: public-API results are byte-identical across kernel backends.

The per-kernel equivalence suite pins each dispatcher in isolation; these
tests pin the composition — a whole Theorem 1.1 orientation run, a whole
Theorem 1.2 coloring run (both branches), a full streaming trace — computed
once per backend and compared as complete result fingerprints.  Also covers
the zero-copy :func:`repro.engine.shm.numpy_column` bridge against the
copying reference slice.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.core.coloring import color
from repro.core.orientation import orient
from repro.graph.generators import (
    planted_dense_subgraph,
    union_of_random_forests,
)
from repro.stream.service import StreamingService
from repro.stream.workloads import uniform_churn_trace

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not importable"
)


def _per_backend(fn):
    results = {}
    for backend in kernels.BACKENDS:
        with kernels.use_backend(backend) as resolved:
            assert resolved == backend  # numpy leg is skipped, not degraded
            results[backend] = fn()
    return results


@needs_numpy
class TestEndToEnd:
    def test_peel_layers_identical(self):
        graph = planted_dense_subgraph(
            150,
            community_size=50,
            community_probability=0.6,
            background_probability=0.04,
            seed=3,
        )
        results = _per_backend(lambda: graph.peel_layers(6))
        assert results[kernels.PURE] == results[kernels.NUMPY]

    def test_orientation_run_identical(self):
        graph = union_of_random_forests(400, arboricity=4, seed=21)
        results = _per_backend(
            lambda: orient(graph, seed=5)
        )
        pure, vec = results[kernels.PURE], results[kernels.NUMPY]
        assert pure.orientation.direction == vec.orientation.direction
        assert pure.rounds == vec.rounds
        assert pure.max_outdegree == vec.max_outdegree

    @pytest.mark.parametrize("force_vertex_partitioning", [False, True])
    def test_coloring_run_identical(self, force_vertex_partitioning):
        graph = union_of_random_forests(300, arboricity=3, seed=8)
        results = _per_backend(
            lambda: color(
                graph,
                seed=5,
                force_vertex_partitioning=force_vertex_partitioning,
            )
        )
        pure, vec = results[kernels.PURE], results[kernels.NUMPY]
        assert pure.coloring.as_dict() == vec.coloring.as_dict()
        assert pure.palette_size == vec.palette_size
        assert pure.num_colors == vec.num_colors
        assert pure.rounds == vec.rounds

    def test_streamed_trace_identical(self):
        trace = uniform_churn_trace(
            120, arboricity=3, num_batches=4, batch_size=80, seed=13
        )

        def run():
            service = StreamingService(trace.initial, seed=0)
            service.apply_all(trace.batches)
            service.verify()
            return (
                tuple(tuple(sorted(out)) for out in service.orientation._out),
                tuple(service.coloring._colors),
                service.cluster.stats.num_rounds,
                [report.as_dict() for report in service.summary.reports],
            )

        results = _per_backend(run)
        assert results[kernels.PURE] == results[kernels.NUMPY]


@needs_numpy
class TestShmNumpyColumn:
    def test_view_matches_the_copying_slice(self):
        from repro.engine import WorkerPool, shm
        from repro.errors import GraphError

        graph = union_of_random_forests(64, arboricity=2, seed=4)
        parts = [graph.induced_subgraph(range(0, 64, 2))]
        with WorkerPool(workers=1) as pool:
            handle = pool.publish_vertex_parts("np-view", parts)
            pool.registry.ensure_shared(handle)
            view = shm._attach_segment(handle)
            for name, (_base, count) in view.columns.items():
                arr = shm.numpy_column(handle, name)
                assert arr.tolist() == list(shm._column_slice(view, name, 0, count))
                assert not arr.flags.writeable
                if count >= 2:
                    window = shm.numpy_column(handle, name, 1, count - 1)
                    assert window.tolist() == list(
                        shm._column_slice(view, name, 1, count - 1)
                    )
            with pytest.raises(GraphError, match="slice"):
                shm.numpy_column(handle, name, 0, count + 1)

    def test_requires_numpy(self, monkeypatch):
        from repro.engine import shm
        from repro.errors import GraphError

        monkeypatch.setattr(kernels, "_numpy_ok", False)
        with pytest.raises(GraphError, match="numpy"):
            shm.numpy_column(object(), "edge_u")
