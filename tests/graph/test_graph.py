"""Unit and property tests for repro.graph.graph."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.graph import Graph, InducedSubgraph, normalize_edge
from tests.conftest import graphs


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            normalize_edge(3, 3)


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_basic_adjacency(self, triangle):
        assert triangle.num_edges == 3
        assert triangle.neighbors(0) == (1, 2)
        assert triangle.degree(1) == 2
        assert triangle.has_edge(0, 2)
        assert not triangle.has_edge(0, 0)

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_vertices(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges_infers_size(self):
        g = Graph.from_edges([(0, 4), (2, 3)])
        assert g.num_vertices == 5
        assert g.num_edges == 2

    def test_equality_and_hash(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(1, 2), (0, 1)])
        g3 = Graph(3, [(0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3

    def test_contains_and_iteration(self, triangle):
        assert (0, 1) in triangle
        assert (1, 0) in triangle  # membership is orientation-agnostic
        assert (1, 1) not in triangle
        assert (0, 7) not in triangle
        assert list(iter(triangle)) == [0, 1, 2]
        assert len(triangle) == 3


class TestDerivedGraphs:
    def test_induced_subgraph_relabels(self, triangle):
        sub = triangle.induced_subgraph([0, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.to_parent(0) == 0
        assert sub.to_parent(1) == 2
        assert sub.to_local(2) == 1

    def test_induced_subgraph_rejects_bad_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.induced_subgraph([0, 7])

    def test_subgraph_without_vertices(self, small_path):
        sub = small_path.subgraph_without_vertices([2])
        # Removing the middle of a path splits it into two components.
        assert sub.num_vertices == 4
        assert len(sub.connected_components()) == 2

    def test_edge_subgraph_keeps_vertex_set(self, triangle):
        sub = triangle.edge_subgraph([(0, 1)])
        assert sub.num_vertices == 3
        assert sub.num_edges == 1

    def test_edge_subgraph_rejects_foreign_edges(self, small_path):
        with pytest.raises(GraphError):
            small_path.edge_subgraph([(0, 4)])

    def test_union_edges(self):
        g1 = Graph(4, [(0, 1)])
        g2 = Graph(4, [(2, 3), (0, 1)])
        union = g1.union_edges(g2)
        assert union.num_edges == 2

    def test_union_edges_rejects_mismatched_vertex_sets(self):
        with pytest.raises(GraphError):
            Graph(3).union_edges(Graph(4))


class TestComponentsAndForests:
    def test_connected_components_of_path(self, small_path):
        assert small_path.connected_components() == [[0, 1, 2, 3, 4]]

    def test_forest_detection(self, small_forest, triangle):
        assert small_forest.is_forest()
        assert not triangle.is_forest()

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(2.0)


class TestInducedSubgraphValidation:
    def test_duplicate_parent_ids_rejected(self):
        with pytest.raises(GraphError):
            InducedSubgraph(2, [(0, 1)], [3, 3])

    def test_parent_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            InducedSubgraph(2, [(0, 1)], [3])


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_degree_sum_equals_twice_edges(graph):
    assert sum(graph.degrees) == 2 * graph.num_edges


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_neighbors_are_symmetric(graph):
    for v in graph.vertices:
        for w in graph.neighbors(v):
            assert v in graph.neighbors(w)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_induced_subgraph_preserves_adjacency(graph, seed):
    import random as _random

    local = _random.Random(seed)
    subset = [v for v in graph.vertices if local.random() < 0.5]
    sub = graph.induced_subgraph(subset)
    for local_u in sub.vertices:
        for local_w in sub.neighbors(local_u):
            assert graph.has_edge(sub.to_parent(local_u), sub.to_parent(local_w))
    # Every edge of the parent with both endpoints kept must appear.
    kept = set(subset)
    expected = sum(1 for (u, v) in graph.edges if u in kept and v in kept)
    assert sub.num_edges == expected
