"""Tests for the HPartition value object."""

from __future__ import annotations

import pytest

from repro.errors import InvalidLayeringError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.local.peeling import peeling_layers_reference


class TestConstruction:
    def test_requires_all_vertices(self, triangle):
        with pytest.raises(InvalidLayeringError):
            HPartition(triangle, {0: 1, 1: 1})

    def test_rejects_non_positive_layers(self, triangle):
        with pytest.raises(InvalidLayeringError):
            HPartition(triangle, {0: 0, 1: 1, 2: 1})

    def test_layers_and_sizes(self, small_path):
        partition = HPartition(small_path, {0: 1, 1: 1, 2: 2, 3: 2, 4: 3})
        assert partition.num_layers == 3
        assert partition.layer(1) == (0, 1)
        assert partition.layer_sizes() == [2, 2, 1]
        assert partition.suffix_sizes() == [5, 3, 1]

    def test_from_layers_round_trip(self, small_path):
        partition = HPartition.from_layers(small_path, [[0, 1], [2, 3], [4]])
        assert partition.layer_of[4] == 3

    def test_from_layers_rejects_duplicates(self, small_path):
        with pytest.raises(InvalidLayeringError):
            HPartition.from_layers(small_path, [[0, 1], [1, 2, 3, 4]])


class TestOutDegreeAndDecay:
    def test_out_degree_of_star_center(self, small_star):
        layer_of = {0: 1}
        layer_of.update({v: 2 for v in range(1, small_star.num_vertices)})
        partition = HPartition(small_star, layer_of)
        assert partition.out_degree_of(0) == small_star.num_vertices - 1
        # Reversing the layers puts the center above the leaves.
        layer_of = {0: 2}
        layer_of.update({v: 1 for v in range(1, small_star.num_vertices)})
        partition = HPartition(small_star, layer_of)
        assert partition.out_degree_of(0) == 0
        assert partition.max_out_degree() == 1

    def test_validate_out_degree(self, triangle):
        partition = HPartition(triangle, {0: 1, 1: 1, 2: 1})
        partition.validate_out_degree(2)
        with pytest.raises(InvalidLayeringError):
            partition.validate_out_degree(1)

    def test_validate_decay(self, small_path):
        partition = HPartition(small_path, {0: 1, 1: 1, 2: 1, 3: 2, 4: 3})
        partition.validate_decay(ratio=0.5, slack=1.2)
        bad = HPartition(small_path, {v: 3 for v in small_path.vertices})
        with pytest.raises(InvalidLayeringError):
            bad.validate_decay(ratio=0.5, slack=1.0)

    def test_peeling_partition_satisfies_out_degree(self, union_forest_graph):
        partition = peeling_layers_reference(union_forest_graph, threshold=6)
        partition.validate_out_degree(6)

    def test_to_orientation_respects_layers(self, union_forest_graph):
        partition = peeling_layers_reference(union_forest_graph, threshold=6)
        orientation = partition.to_orientation()
        assert orientation.max_outdegree() <= 6
        assert orientation.is_acyclic()


class TestEdgeCases:
    def test_single_vertex(self):
        g = Graph(1)
        partition = HPartition(g, {0: 1})
        assert partition.max_out_degree() == 0
        assert partition.suffix_sizes() == [1]

    def test_forest_peeling_has_small_outdegree(self, small_forest):
        partition = peeling_layers_reference(small_forest, threshold=2)
        assert partition.max_out_degree() <= 2
