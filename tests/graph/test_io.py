"""Tests for edge-list I/O and result formatting."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.coloring import Coloring
from repro.graph.hpartition import HPartition
from repro.graph.io import (
    format_coloring,
    format_layering,
    format_orientation,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
    write_text,
)
from repro.graph.orientation import Orientation


class TestParseEdgeList:
    def test_basic_parse(self):
        graph = parse_edge_list(["0 1", "1 2", "", "# a comment", "2 0"])
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_vertices_header_allows_isolated_vertices(self):
        graph = parse_edge_list(["# vertices 10", "0 1"])
        assert graph.num_vertices == 10
        assert graph.num_edges == 1

    def test_duplicate_and_reversed_edges_collapse(self):
        graph = parse_edge_list(["0 1", "1 0", "0 1"])
        assert graph.num_edges == 1

    def test_self_loops_dropped(self):
        graph = parse_edge_list(["0 0", "0 1"])
        assert graph.num_edges == 1

    def test_bad_lines_rejected(self):
        with pytest.raises(GraphError):
            parse_edge_list(["0"])
        with pytest.raises(GraphError):
            parse_edge_list(["a b"])
        with pytest.raises(GraphError):
            parse_edge_list(["-1 2"])

    def test_empty_input(self):
        graph = parse_edge_list([])
        assert graph.num_vertices == 0


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, union_forest_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(union_forest_graph, path)
        loaded = read_edge_list(path)
        assert loaded == union_forest_graph

    def test_write_text_adds_newline(self, tmp_path):
        path = tmp_path / "out.txt"
        write_text("hello", path)
        assert path.read_text() == "hello\n"


class TestFormatters:
    def test_format_orientation(self, small_path):
        orientation = Orientation.from_vertex_order(small_path, {v: v for v in small_path.vertices})
        text = format_orientation(orientation)
        assert "0 -> 1" in text
        assert len(text.splitlines()) == small_path.num_edges

    def test_format_coloring(self, triangle):
        coloring = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        lines = format_coloring(coloring).splitlines()
        assert lines == ["0 0", "1 1", "2 2"]

    def test_format_layering(self, small_path):
        partition = HPartition(small_path, {0: 1, 1: 1, 2: 2, 3: 2, 4: 3})
        lines = format_layering(partition).splitlines()
        assert lines[0] == "0 1"
        assert lines[-1] == "4 3"
