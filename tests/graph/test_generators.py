"""Tests for the random graph generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.arboricity import degeneracy


class TestDeterministicFamilies:
    def test_star_shape(self):
        g = generators.star(10)
        assert g.num_vertices == 11
        assert g.num_edges == 10
        assert g.degree(0) == 10
        assert all(g.degree(v) == 1 for v in range(1, 11))

    def test_path_and_cycle(self):
        p = generators.path(6)
        assert p.num_edges == 5 and p.is_forest()
        c = generators.cycle(6)
        assert c.num_edges == 6 and not c.is_forest()
        with pytest.raises(GraphError):
            generators.cycle(2)

    def test_complete_graph(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert g.max_degree() == 5

    def test_complete_bipartite(self):
        g = generators.complete_bipartite(3, 4)
        assert g.num_edges == 12
        assert g.num_vertices == 7

    def test_grid(self):
        g = generators.grid_2d(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        with pytest.raises(GraphError):
            generators.grid_2d(0, 3)

    def test_complete_ary_tree_is_tree(self):
        g = generators.complete_ary_tree(4, 100)
        assert g.is_forest()
        assert g.num_edges == 99
        with pytest.raises(GraphError):
            generators.complete_ary_tree(1, 10)

    def test_complete_ary_tree_zero_vertices_is_empty(self):
        """Regression: n=0 used to return a spurious 1-vertex graph."""
        g = generators.complete_ary_tree(3, 0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_zero_vertex_generators_return_empty_graphs(self):
        """Every generator that accepts n=0 must return the empty graph."""
        cases = [
            generators.complete_ary_tree(2, 0),
            generators.deep_hierarchy(0, seed=1),
            generators.random_tree(0, seed=1),
            generators.random_forest(0, num_trees=1, seed=1),
            generators.union_of_random_forests(0, arboricity=2, seed=1),
            generators.gnp_random_graph(0, 0.5, seed=1),
            generators.gnm_random_graph(0, 0, seed=1),
            generators.chung_lu_power_law(0, seed=1),
            generators.bounded_degree_random_graph(0, 3, seed=1),
            generators.complete_graph(0),
            generators.complete_bipartite(0, 0),
            generators.path(0),
        ]
        for g in cases:
            assert g.num_vertices == 0
            assert g.num_edges == 0


class TestRandomTreesAndForests:
    def test_random_tree_is_tree(self):
        g = generators.random_tree(50, seed=3)
        assert g.is_forest()
        assert len(g.connected_components()) == 1

    def test_random_forest_component_count(self):
        g = generators.random_forest(60, num_trees=5, seed=3)
        assert g.is_forest()
        assert len(g.connected_components()) == 5

    def test_random_forest_rejects_bad_tree_count(self):
        with pytest.raises(GraphError):
            generators.random_forest(10, num_trees=0)

    def test_union_of_forests_bounds_arboricity(self):
        g = generators.union_of_random_forests(200, arboricity=4, seed=5)
        # Nash-Williams: the union of 4 forests has arboricity at most 4,
        # hence degeneracy at most 2*4 - 1.
        assert degeneracy(g) <= 7
        with pytest.raises(GraphError):
            generators.union_of_random_forests(10, arboricity=0)

    def test_deep_hierarchy_contains_tree(self):
        g = generators.deep_hierarchy(200, branching=6, extra_forests=1, seed=9)
        assert g.num_edges >= 199  # at least the b-ary tree edges


class TestErdosRenyi:
    def test_gnp_edge_count_scales_with_p(self):
        sparse = generators.gnp_random_graph(300, 0.01, seed=1)
        dense = generators.gnp_random_graph(300, 0.05, seed=1)
        assert sparse.num_edges < dense.num_edges

    def test_gnp_extreme_probabilities(self):
        assert generators.gnp_random_graph(20, 0.0, seed=1).num_edges == 0
        assert generators.gnp_random_graph(6, 1.0, seed=1).num_edges == 15
        with pytest.raises(GraphError):
            generators.gnp_random_graph(10, 1.5)

    def test_gnm_exact_edge_count(self):
        g = generators.gnm_random_graph(50, 120, seed=2)
        assert g.num_edges == 120
        with pytest.raises(GraphError):
            generators.gnm_random_graph(4, 100)


class TestPowerLawAndPlanted:
    def test_power_law_has_hubs(self):
        g = generators.chung_lu_power_law(500, exponent=2.2, average_degree=6.0, seed=4)
        # Heavy-tailed: the maximum degree should far exceed the average.
        assert g.max_degree() > 4 * g.average_degree()
        with pytest.raises(GraphError):
            generators.chung_lu_power_law(10, exponent=1.0)

    def test_planted_dense_subgraph_density(self):
        g = generators.planted_dense_subgraph(
            150, community_size=30, community_probability=0.6, background_probability=0.01, seed=6
        )
        community_edges = sum(1 for (u, v) in g.edges if u < 30 and v < 30)
        assert community_edges > 100  # dense community clearly present
        with pytest.raises(GraphError):
            generators.planted_dense_subgraph(10, community_size=20)

    def test_bounded_degree_random_graph(self):
        g = generators.bounded_degree_random_graph(60, degree=4, seed=8)
        assert g.max_degree() <= 4


class TestRegistry:
    @pytest.mark.parametrize("family", generators.family_names())
    def test_generate_every_family(self, family):
        g = generators.generate(family, 64, seed=3)
        assert g.num_vertices >= 1

    def test_generate_unknown_family(self):
        with pytest.raises(GraphError):
            generators.generate("no-such-family", 10)

    def test_generators_are_deterministic_given_seed(self):
        a = generators.generate("union_forests", 100, seed=42, arboricity=3)
        b = generators.generate("union_forests", 100, seed=42, arboricity=3)
        assert a == b

    def test_shared_rng_advances(self):
        rng = random.Random(1)
        a = generators.random_tree(20, rng=rng)
        b = generators.random_tree(20, rng=rng)
        assert a != b  # the same rng produces different draws
