"""Tests for the Orientation value object."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import InvalidOrientationError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.orientation import Orientation, validate_outdegree_bound
from tests.conftest import graphs


class TestConstruction:
    def test_must_cover_edge_set(self, triangle):
        with pytest.raises(InvalidOrientationError):
            Orientation(triangle, {(0, 1): 1})  # missing edges

    def test_rejects_foreign_head(self, triangle):
        with pytest.raises(InvalidOrientationError):
            Orientation(triangle, {(0, 1): 2, (0, 2): 2, (1, 2): 2})

    def test_basic_queries(self, triangle):
        orientation = Orientation(triangle, {(0, 1): 1, (0, 2): 0, (1, 2): 2})
        assert orientation.head(0, 1) == 1
        assert orientation.tail(0, 1) == 0
        assert orientation.is_oriented_from(2, 0)
        assert orientation.out_neighbors(0) == [1]
        assert orientation.in_neighbors(0) == [2]
        assert orientation.outdegree(1) == 1
        assert orientation.max_outdegree() == 1

    def test_iter_directed_edges_matches_heads(self, triangle):
        orientation = Orientation(triangle, {(0, 1): 1, (0, 2): 0, (1, 2): 2})
        directed = list(orientation.iter_directed_edges())
        assert directed == [(0, 1), (2, 0), (1, 2)]  # edge-column order
        for (u, v), (tail, head) in zip(triangle.edges, directed):
            assert {tail, head} == {u, v}
            assert orientation.head(u, v) == head


class TestFromVertexOrderAndLayering:
    def test_from_vertex_order_orients_upward(self, small_path):
        orientation = Orientation.from_vertex_order(small_path, {v: v for v in small_path.vertices})
        assert all(orientation.is_oriented_from(i, i + 1) for i in range(4))
        assert orientation.max_outdegree() == 1

    def test_ties_break_toward_larger_id(self, triangle):
        orientation = Orientation.from_vertex_order(triangle, {0: 0, 1: 0, 2: 0})
        assert orientation.is_oriented_from(0, 1)
        assert orientation.is_oriented_from(1, 2)
        assert orientation.is_oriented_from(0, 2)

    def test_from_layering_acyclic(self, union_forest_graph):
        # Orientations induced by any vertex ranking are acyclic.
        rank = {v: v % 7 for v in union_forest_graph.vertices}
        orientation = Orientation.from_layering(union_forest_graph, rank)
        assert orientation.is_acyclic()

    def test_star_layering_gives_outdegree_one(self, small_star):
        layers = {0: 2}
        layers.update({v: 1 for v in range(1, small_star.num_vertices)})
        orientation = Orientation.from_layering(small_star, layers)
        assert orientation.max_outdegree() == 1
        assert orientation.outdegree(0) == 0


class TestMergeAndValidation:
    def test_merge_of_edge_disjoint_parts(self):
        g1 = Graph(4, [(0, 1)])
        g2 = Graph(4, [(2, 3)])
        o1 = Orientation(g1, {(0, 1): 1})
        o2 = Orientation(g2, {(2, 3): 2})
        merged = o1.merge_with(o2)
        assert merged.graph.num_edges == 2
        assert merged.max_outdegree() == 1

    def test_merge_rejects_shared_edges(self):
        g = Graph(2, [(0, 1)])
        o1 = Orientation(g, {(0, 1): 1})
        o2 = Orientation(g, {(0, 1): 0})
        with pytest.raises(InvalidOrientationError):
            o1.merge_with(o2)

    def test_merge_rejects_different_vertex_sets(self):
        o1 = Orientation(Graph(2, [(0, 1)]), {(0, 1): 1})
        o2 = Orientation(Graph(3, [(1, 2)]), {(1, 2): 2})
        with pytest.raises(InvalidOrientationError):
            o1.merge_with(o2)

    def test_validate_outdegree_bound(self, small_star):
        # Orient everything away from the center: outdegree = number of leaves.
        direction = {(0, v): v for v in range(1, small_star.num_vertices)}
        orientation = Orientation(small_star, direction)
        validate_outdegree_bound(orientation, small_star.num_vertices - 1)
        with pytest.raises(InvalidOrientationError):
            validate_outdegree_bound(orientation, 2)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=20))
def test_outdegree_sum_equals_edges(graph):
    orientation = Orientation.from_vertex_order(graph, {v: v for v in graph.vertices})
    assert sum(orientation.outdegrees) == graph.num_edges


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=20))
def test_id_order_orientation_is_acyclic(graph):
    orientation = Orientation.from_vertex_order(graph, {v: 0 for v in graph.vertices})
    assert orientation.is_acyclic()
