"""Tests for the Dinic max-flow substrate."""

from __future__ import annotations

import pytest

from repro.graph.maxflow import FlowNetwork


class TestFlowNetworkBasics:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            FlowNetwork(0)
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.5)
        assert net.max_flow(0, 1) == pytest.approx(3.5)

    def test_series_edges_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 2.0)
        assert net.max_flow(0, 2) == pytest.approx(2.0)

    def test_parallel_paths_add(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 2.0)
        assert net.max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected_sink(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        assert net.max_flow(0, 2) == pytest.approx(0.0)


class TestClassicInstances:
    def test_clrs_style_network(self):
        # A standard 6-node instance with known max flow 23.
        net = FlowNetwork(6)
        s, v1, v2, v3, v4, t = range(6)
        net.add_edge(s, v1, 16)
        net.add_edge(s, v2, 13)
        net.add_edge(v1, v2, 10)
        net.add_edge(v2, v1, 4)
        net.add_edge(v1, v3, 12)
        net.add_edge(v3, v2, 9)
        net.add_edge(v2, v4, 14)
        net.add_edge(v4, v3, 7)
        net.add_edge(v3, t, 20)
        net.add_edge(v4, t, 4)
        assert net.max_flow(s, t) == pytest.approx(23.0)

    def test_min_cut_matches_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(1, 3, 4.0)
        net.add_edge(2, 3, 1.0)
        flow = net.max_flow(0, 3)
        source_side = net.min_cut_source_side(0)
        assert 0 in source_side and 3 not in source_side
        # Max-flow equals min-cut: edges crossing the cut carry exactly the flow.
        assert flow == pytest.approx(3.0)

    def test_requires_multiple_phases(self):
        # A layered network where Dinic needs more than one BFS phase.
        net = FlowNetwork(6)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        net.add_edge(3, 4, 2)
        net.add_edge(4, 5, 2)
        assert net.max_flow(0, 5) == pytest.approx(2.0)
