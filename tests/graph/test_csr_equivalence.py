"""Property tests: the CSR-backed Graph is observationally equivalent to a
straightforward reference implementation (sets of tuples + per-vertex lists,
the representation the seed code used)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, normalize_edge
from tests.conftest import graphs


class ReferenceGraph:
    """The pre-CSR representation: an edge set and sorted adjacency tuples."""

    def __init__(self, num_vertices: int, edges):
        self.n = num_vertices
        self.edge_set = set()
        adjacency = [[] for _ in range(num_vertices)]
        for u, v in edges:
            e = normalize_edge(u, v)
            self.edge_set.add(e)
            adjacency[e[0]].append(e[1])
            adjacency[e[1]].append(e[0])
        self.edges = tuple(sorted(self.edge_set))
        self.adjacency = tuple(tuple(sorted(a)) for a in adjacency)
        self.degrees = tuple(len(a) for a in self.adjacency)

    def connected_components(self):
        seen = [False] * self.n
        components = []
        for start in range(self.n):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self.adjacency[u]:
                    if not seen[w]:
                        seen[w] = True
                        component.append(w)
                        stack.append(w)
            components.append(sorted(component))
        return components


@settings(max_examples=60, deadline=None)
@given(graphs(max_vertices=20), st.integers(min_value=0, max_value=2**31 - 1))
def test_csr_matches_reference(graph, seed):
    reference = ReferenceGraph(graph.num_vertices, graph.edges)

    # Edge list, degrees, adjacency.
    assert graph.edges == reference.edges
    assert graph.degrees == reference.degrees
    for v in graph.vertices:
        assert graph.neighbors(v) == reference.adjacency[v]
        assert graph.degree(v) == reference.degrees[v]

    # Edge membership, both orientations, plus negatives.
    rng = random.Random(seed)
    for u, v in reference.edges:
        assert (u, v) in graph and (v, u) in graph
    for _ in range(20):
        u = rng.randrange(max(graph.num_vertices, 1))
        v = rng.randrange(max(graph.num_vertices, 1))
        if u != v:
            assert ((u, v) in graph) == (normalize_edge(u, v) in reference.edge_set)

    # Components agree (both sorted lists of sorted lists).
    assert graph.connected_components() == reference.connected_components()


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=20), st.integers(min_value=0, max_value=2**31 - 1))
def test_induced_subgraph_matches_reference(graph, seed):
    rng = random.Random(seed)
    kept = [v for v in graph.vertices if rng.random() < 0.6]
    kept_set = set(kept)
    sub = graph.induced_subgraph(kept)

    expected_edges = sorted(
        (u, v) for (u, v) in graph.edges if u in kept_set and v in kept_set
    )
    local_edges = sorted(
        tuple(sorted((sub.to_parent(u), sub.to_parent(v)))) for (u, v) in sub.edges
    )
    assert local_edges == expected_edges
    assert list(sub.parent_ids) == sorted(kept_set)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=20), st.integers(min_value=0, max_value=2**31 - 1))
def test_edge_subgraph_matches_reference(graph, seed):
    rng = random.Random(seed)
    subset = [e for e in graph.edges if rng.random() < 0.5]
    sub = graph.edge_subgraph(subset)
    assert sub.num_vertices == graph.num_vertices
    assert set(sub.edges) == set(subset)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=16))
def test_union_edges_matches_set_union(graph):
    half = graph.edges[: graph.num_edges // 2]
    g1 = Graph(graph.num_vertices, half)
    union = g1.union_edges(graph)
    assert set(union.edges) == set(graph.edges)
    assert union == graph


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=16), st.integers(min_value=0, max_value=8))
def test_peel_layers_matches_naive_rounds(graph, threshold):
    """The frontier kernel reproduces the naive round-by-round peel exactly."""
    n = graph.num_vertices
    degree = list(graph.degrees)
    removed = [False] * n
    expected = [0] * n
    current_layer = 1
    while True:
        peel = [v for v in range(n) if not removed[v] and degree[v] <= threshold]
        if not peel:
            break
        for v in peel:
            expected[v] = current_layer
            removed[v] = True
        for v in peel:
            for w in graph.neighbors(v):
                if not removed[w]:
                    degree[w] -= 1
        current_layer += 1

    layers, rounds_used = graph.peel_layers(threshold)
    assert list(layers) == expected
    assert rounds_used == max(expected, default=0)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=16), st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=3))
def test_peel_layers_respects_max_rounds(graph, threshold, max_rounds):
    layers, rounds_used = graph.peel_layers(threshold, max_rounds=max_rounds)
    assert rounds_used <= max_rounds
    assert max(layers, default=0) == rounds_used


def test_mapping_views_honor_the_items_contract():
    """The direction / layer_of views must behave like dict views: items()
    re-iterable, len()-able, and keys/values consistent (regression for a
    single-use-iterator items() override)."""
    from repro.core.layering import PartialLayerAssignment
    from repro.graph.orientation import Orientation

    g = Graph(3, [(0, 1), (1, 2), (0, 2)])
    orientation = Orientation(g, {(0, 1): 1, (1, 2): 2, (0, 2) : 0})
    items = orientation.direction.items()
    assert len(items) == 3
    assert list(items) == list(items)  # re-iterable, not a one-shot iterator
    assert ((0, 1), 1) in items

    assignment = PartialLayerAssignment(g, {0: 1, 1: 2, 2: 2}, num_layers=2, out_degree=2)
    items = assignment.layer_of.items()
    assert len(items) == 3
    assert list(items) == list(items)
    assert sorted(assignment.layer_of.keys()) == [0, 1, 2]
    assert dict(assignment.layer_of) == {0: 1, 1: 2, 2: 2}
