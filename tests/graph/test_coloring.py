"""Tests for the Coloring value object."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import InvalidColoringError
from repro.graph import generators
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from tests.conftest import graphs


class TestConstruction:
    def test_requires_all_vertices(self, triangle):
        with pytest.raises(InvalidColoringError):
            Coloring(triangle, {0: 0, 1: 1})

    def test_rejects_negative_colors(self, triangle):
        with pytest.raises(InvalidColoringError):
            Coloring(triangle, {0: 0, 1: -1, 2: 2})

    def test_basic_accessors(self, triangle):
        coloring = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        assert coloring.color(1) == 1
        assert coloring.num_colors() == 3
        assert coloring.max_color() == 2
        assert coloring.color_class_sizes() == {0: 1, 1: 1, 2: 1}
        assert coloring.as_dict() == {0: 0, 1: 1, 2: 2}


class TestProperness:
    def test_proper_triangle(self, triangle):
        coloring = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        assert coloring.is_proper()
        coloring.validate_proper()

    def test_improper_detected(self, triangle):
        coloring = Coloring(triangle, {0: 0, 1: 0, 2: 1})
        assert not coloring.is_proper()
        assert (0, 1) in coloring.conflicting_edges()
        with pytest.raises(InvalidColoringError):
            coloring.validate_proper()

    def test_palette_validation(self, small_path):
        coloring = Coloring(small_path, {v: v % 2 for v in small_path.vertices})
        coloring.validate_palette(2)
        with pytest.raises(InvalidColoringError):
            coloring.validate_palette(1)

    def test_star_two_coloring(self, small_star):
        colors = {0: 1}
        colors.update({v: 0 for v in range(1, small_star.num_vertices)})
        coloring = Coloring(small_star, colors)
        assert coloring.is_proper()
        assert coloring.num_colors() == 2

    def test_equality(self, triangle):
        a = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        b = Coloring(triangle, {0: 0, 1: 1, 2: 2})
        c = Coloring(triangle, {0: 2, 1: 1, 2: 0})
        assert a == b
        assert a != c


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=16))
def test_identity_coloring_always_proper(graph):
    coloring = Coloring(graph, {v: v for v in graph.vertices})
    assert coloring.is_proper()
    assert coloring.num_colors() == graph.num_vertices
