"""Tests for degeneracy, densest subgraph and arboricity bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import generators
from repro.graph.arboricity import (
    arboricity_bounds,
    arboricity_upper_bound,
    degeneracy,
    degeneracy_ordering,
    densest_subgraph,
    densest_subgraph_density,
    greedy_peeling_layers,
)
from repro.graph.graph import Graph
from tests.conftest import graphs


class TestDegeneracy:
    def test_empty_and_edgeless(self):
        assert degeneracy(Graph.empty(0)) == 0
        assert degeneracy(Graph.empty(5)) == 0

    def test_tree_has_degeneracy_one(self, small_forest):
        assert degeneracy(small_forest) == 1

    def test_cycle_has_degeneracy_two(self):
        assert degeneracy(generators.cycle(10)) == 2

    def test_complete_graph(self):
        assert degeneracy(generators.complete_graph(6)) == 5

    def test_star_has_degeneracy_one(self, small_star):
        assert degeneracy(small_star) == 1

    def test_ordering_is_permutation_with_consistent_cores(self, union_forest_graph):
        order, cores, d = degeneracy_ordering(union_forest_graph)
        assert sorted(order) == list(union_forest_graph.vertices)
        assert max(cores) == d
        assert all(c >= 0 for c in cores)

    def test_ordering_property(self, power_law_graph):
        # Each vertex has at most `degeneracy` neighbors later in the order.
        order, _cores, d = degeneracy_ordering(power_law_graph)
        position = {v: i for i, v in enumerate(order)}
        for v in power_law_graph.vertices:
            later = sum(1 for w in power_law_graph.neighbors(v) if position[w] > position[v])
            assert later <= d


class TestGreedyPeeling:
    def test_layers_partition_vertices(self, union_forest_graph):
        layers = greedy_peeling_layers(union_forest_graph, threshold=6)
        flattened = [v for layer in layers for v in layer]
        assert sorted(flattened) == list(union_forest_graph.vertices)

    def test_zero_threshold_on_edgeless_graph(self):
        layers = greedy_peeling_layers(Graph.empty(4), threshold=0)
        assert layers == [[0, 1, 2, 3]]

    def test_negative_threshold_rejected(self, triangle):
        with pytest.raises(ValueError):
            greedy_peeling_layers(triangle, threshold=-1)

    def test_stalls_dump_remainder(self):
        clique = generators.complete_graph(5)
        layers = greedy_peeling_layers(clique, threshold=1)
        assert layers == [[0, 1, 2, 3, 4]]


class TestDensestSubgraph:
    def test_empty_graph(self):
        assert densest_subgraph_density(Graph.empty(4)) == 0.0

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert densest_subgraph_density(g) == pytest.approx(0.5, abs=1e-4)

    def test_triangle(self, triangle):
        assert densest_subgraph_density(triangle) == pytest.approx(1.0, abs=1e-4)

    def test_clique_density(self):
        g = generators.complete_graph(6)
        assert densest_subgraph_density(g) == pytest.approx(15 / 6, abs=1e-4)

    def test_planted_community_is_found(self, dense_community_graph):
        subset, density = densest_subgraph(dense_community_graph)
        # The planted community occupies vertices 0..69; the witness should be
        # concentrated there and much denser than the background.
        overlap = len([v for v in subset if v < 70]) / max(len(subset), 1)
        assert overlap > 0.8
        assert density > 5.0

    def test_density_below_degeneracy(self, power_law_graph):
        density = densest_subgraph_density(power_law_graph)
        assert density <= degeneracy(power_law_graph) + 1e-6


class TestArboricityBounds:
    def test_edgeless(self):
        bounds = arboricity_bounds(Graph.empty(3))
        assert bounds.lower == 0 and bounds.upper == 0

    def test_forest_bounds(self, small_forest):
        bounds = arboricity_bounds(small_forest)
        assert bounds.lower == 1
        assert bounds.upper == 1

    def test_clique_bounds(self):
        bounds = arboricity_bounds(generators.complete_graph(8))
        # λ(K_8) = ceil(8/2) = 4, degeneracy 7.
        assert bounds.lower <= 4 <= bounds.upper

    def test_upper_bound_cheap_path(self, union_forest_graph):
        assert arboricity_upper_bound(union_forest_graph) == degeneracy(union_forest_graph)

    def test_inconsistent_bounds_rejected(self):
        from repro.graph.arboricity import ArboricityBounds

        with pytest.raises(ValueError):
            ArboricityBounds(lower=5, upper=2, density=4.0, degeneracy=2)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=16))
def test_density_degeneracy_sandwich(graph):
    """⌈α⌉ ≤ λ ≤ degeneracy, and α ≤ degeneracy, for every graph."""
    if graph.num_edges == 0:
        return
    density = densest_subgraph_density(graph)
    d = degeneracy(graph)
    assert density <= d + 1e-6
    # The whole graph is always a candidate subgraph.
    assert density + 1e-9 >= graph.num_edges / graph.num_vertices
