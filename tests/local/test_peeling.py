"""Tests for the Barenboim–Elkin LOCAL peeling baseline."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.graph import generators
from repro.local.peeling import (
    barenboim_elkin_peeling,
    peeling_layers_reference,
    peeling_threshold,
)


class TestThreshold:
    def test_formula(self):
        assert peeling_threshold(1, 0.5) == 3
        assert peeling_threshold(4, 0.5) == 10
        assert peeling_threshold(0, 0.5) == 3  # clamped to λ=1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            peeling_threshold(-1)
        with pytest.raises(ParameterError):
            peeling_threshold(2, 0.0)


class TestPeeling:
    def test_forest_outdegree_bound(self, small_forest):
        result = barenboim_elkin_peeling(small_forest, arboricity=1)
        assert result.orientation.max_outdegree() <= result.threshold
        assert result.partition.max_out_degree() <= result.threshold

    def test_union_forest_outdegree_bound(self, union_forest_graph):
        result = barenboim_elkin_peeling(union_forest_graph, arboricity=3)
        assert result.orientation.max_outdegree() <= result.threshold == 8

    def test_matches_reference_layers(self, union_forest_graph):
        result = barenboim_elkin_peeling(union_forest_graph, arboricity=3)
        reference = peeling_layers_reference(union_forest_graph, result.threshold)
        assert result.partition.layer_of == reference.layer_of

    def test_deep_tree_takes_one_round_per_level(self):
        graph = generators.complete_ary_tree(4, 4**4 + 4**3 + 4**2 + 4 + 1)
        result = barenboim_elkin_peeling(graph, arboricity=1)
        # Peeling removes exactly one level per round: height + 1 levels.
        assert result.rounds >= 4

    def test_rounds_grow_with_depth(self):
        shallow = generators.complete_ary_tree(4, 256)
        deep = generators.complete_ary_tree(4, 16384)
        rounds_shallow = barenboim_elkin_peeling(shallow, arboricity=1).rounds
        rounds_deep = barenboim_elkin_peeling(deep, arboricity=1).rounds
        assert rounds_deep > rounds_shallow

    def test_survivors_dumped_when_threshold_too_small(self):
        clique = generators.complete_graph(8)
        result = barenboim_elkin_peeling(clique, arboricity=1, max_rounds=3)
        # Threshold 3 cannot peel K8; everyone still receives a layer.
        assert set(result.partition.layer_of) == set(clique.vertices)

    def test_empty_graph(self):
        empty = generators.path(0)
        result = barenboim_elkin_peeling(empty, arboricity=1)
        assert result.rounds == 0
