"""Tests for the LOCAL model simulator."""

from __future__ import annotations

from typing import Any, Mapping

from repro.graph import generators
from repro.local.network import LocalNetwork, VertexAlgorithm


class FloodMin(VertexAlgorithm):
    """Every vertex learns the minimum id in its connected component.

    A classic LOCAL algorithm whose round complexity equals the component
    diameter; used to verify the simulator's semantics and round counting.
    """

    def init(self, vertex: int, graph):
        # A vertex cannot know the diameter, so it waits n quiet rounds (a
        # safe upper bound) before declaring its value final.
        return {"best": vertex, "idle_rounds": 0, "patience": max(graph.num_vertices, 1)}

    def message(self, vertex: int, state, neighbor: int):
        return state["best"]

    def update(self, vertex: int, state, inbox: Mapping[int, Any]):
        best = min([state["best"], *inbox.values()]) if inbox else state["best"]
        changed = best < state["best"]
        idle = 0 if changed else state["idle_rounds"] + 1
        return {"best": best, "idle_rounds": idle, "patience": state["patience"]}

    def is_halted(self, vertex: int, state) -> bool:
        return state["idle_rounds"] >= state["patience"]

    def output(self, vertex: int, state):
        return state["best"]


class TestLocalNetwork:
    def test_flood_min_on_path(self):
        graph = generators.path(10)
        result = LocalNetwork(graph).run(FloodMin(), max_rounds=50)
        assert result.halted
        assert all(value == 0 for value in result.outputs.values())
        # Information needs about diameter rounds to traverse the path.
        assert result.rounds >= 9

    def test_flood_min_respects_components(self):
        graph = generators.random_forest(40, num_trees=4, seed=3)
        result = LocalNetwork(graph).run(FloodMin(), max_rounds=200)
        assert result.halted
        for component in graph.connected_components():
            expected = min(component)
            for v in component:
                assert result.outputs[v] == expected

    def test_max_rounds_cap(self):
        graph = generators.path(50)
        result = LocalNetwork(graph).run(FloodMin(), max_rounds=3)
        assert not result.halted
        assert result.rounds == 3

    def test_empty_graph(self):
        graph = generators.path(0)
        result = LocalNetwork(graph).run(FloodMin())
        assert result.halted
        assert result.outputs == {}
        assert result.rounds == 0
