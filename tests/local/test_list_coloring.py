"""Tests for the randomized degree+1 list coloring subroutine."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.coloring import Coloring
from repro.local.list_coloring import (
    greedy_list_coloring,
    random_list_coloring,
    validate_lists,
)
from tests.conftest import graphs


def degree_plus_one_palettes(graph, extra: int = 0, offset: int = 0):
    return {
        v: list(range(offset, offset + graph.degree(v) + 1 + extra)) for v in graph.vertices
    }


class TestValidation:
    def test_missing_palette_rejected(self, triangle):
        with pytest.raises(ParameterError):
            validate_lists(triangle, {0: [0, 1, 2], 1: [0, 1, 2]})

    def test_short_palette_rejected(self, triangle):
        with pytest.raises(ParameterError):
            validate_lists(triangle, {0: [0], 1: [0, 1, 2], 2: [0, 1, 2]})


class TestRandomListColoring:
    def test_colors_triangle(self, triangle):
        result = random_list_coloring(triangle, degree_plus_one_palettes(triangle), seed=1)
        coloring = Coloring(triangle, result.colors)
        assert coloring.is_proper()
        assert result.rounds >= 1

    def test_colors_from_own_palette(self, union_forest_graph):
        palettes = degree_plus_one_palettes(union_forest_graph, offset=100)
        result = random_list_coloring(union_forest_graph, palettes, seed=3)
        for v, c in result.colors.items():
            assert c in palettes[v]
        Coloring(union_forest_graph, result.colors).validate_proper()

    def test_respects_asymmetric_palettes(self):
        graph = generators.star(6)
        palettes = {0: list(range(10, 18))}
        palettes.update({v: [0, 10] for v in range(1, 7)})
        result = random_list_coloring(graph, palettes, seed=5)
        coloring = Coloring(graph, result.colors)
        assert coloring.is_proper()

    def test_deterministic_given_seed(self, union_forest_graph):
        palettes = degree_plus_one_palettes(union_forest_graph)
        a = random_list_coloring(union_forest_graph, palettes, seed=9)
        b = random_list_coloring(union_forest_graph, palettes, seed=9)
        assert a.colors == b.colors

    def test_rounds_logarithmic_in_practice(self, power_law_graph):
        palettes = degree_plus_one_palettes(power_law_graph)
        result = random_list_coloring(power_law_graph, palettes, seed=2)
        assert result.rounds <= 16 * max(power_law_graph.num_vertices.bit_length(), 4)

    def test_shared_rng_accepted(self, triangle):
        rng = random.Random(0)
        result = random_list_coloring(triangle, degree_plus_one_palettes(triangle), rng=rng)
        Coloring(triangle, result.colors).validate_proper()


class TestGreedyListColoring:
    def test_matches_palettes_and_is_proper(self, union_forest_graph):
        palettes = degree_plus_one_palettes(union_forest_graph)
        colors = greedy_list_coloring(union_forest_graph, palettes)
        coloring = Coloring(union_forest_graph, colors)
        coloring.validate_proper()
        for v, c in colors.items():
            assert c in palettes[v]


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=14), st.integers(min_value=0, max_value=1000))
def test_random_list_coloring_property(graph, seed):
    palettes = {v: list(range(graph.degree(v) + 1)) for v in graph.vertices}
    result = random_list_coloring(graph, palettes, seed=seed)
    coloring = Coloring(graph, result.colors)
    assert coloring.is_proper()
    for v, c in result.colors.items():
        assert c in palettes[v]
