"""Tests for workloads, the experiment registry and the harness."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    run_coloring_experiment,
    run_orientation_experiment,
    run_round_scaling_experiment,
    sweep,
)
from repro.experiments.registry import all_experiments, get_experiment, get_runner
from repro.experiments.workloads import (
    Workload,
    dense_sweep,
    forests_sweep,
    power_law_sweep,
    standard_suite,
    union_forest_sweep,
)


class TestWorkloads:
    def test_materialize_is_deterministic(self):
        workload = Workload(
            name="w", family="union_forests", num_vertices=128, seed=3, params=(("arboricity", 2),)
        )
        assert workload.materialize() == workload.materialize()
        assert "union_forests" in workload.describe()

    def test_sweep_constructors(self):
        assert len(forests_sweep(sizes=(64, 128))) == 2
        assert len(union_forest_sweep(sizes=(64,), arboricities=(2, 4))) == 2
        assert len(power_law_sweep(sizes=(64,))) == 1
        assert len(dense_sweep(sizes=(100,))) == 1
        assert len(standard_suite()) >= 4

    def test_workload_sizes_match(self):
        for workload in union_forest_sweep(sizes=(64,), arboricities=(2,)):
            graph = workload.materialize()
            assert graph.num_vertices == 64


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [spec.experiment_id for spec in all_experiments()]
        assert ids == ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "S1", "S2", "S3", "S4"]

    def test_every_experiment_has_workloads_and_columns(self):
        for spec in all_experiments():
            assert spec.workloads, spec.experiment_id
            assert spec.columns, spec.experiment_id
            assert spec.bench_module.startswith("benchmarks/")

    def test_get_experiment_lookup(self):
        assert get_experiment("E3").experiment_id == "E3"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_runner_lookup_covers_harness_backed_experiments(self):
        for experiment_id in ("E1", "E2", "E3", "S1", "S2", "S3"):
            assert callable(get_runner(experiment_id))
        with pytest.raises(KeyError, match="bench_e4"):
            get_runner("E4")

    def test_s2_sweep_holds_the_update_budget_fixed(self):
        spec = get_experiment("S2")
        budgets = set()
        for workload in spec.workloads:
            params = dict(workload.params)
            budgets.add(params["num_batches"] * params["batch_size"])
        assert len(budgets) == 1


class TestHarness:
    @pytest.fixture
    def small_workload(self) -> Workload:
        return Workload(
            name="small",
            family="union_forests",
            num_vertices=128,
            seed=1,
            params=(("arboricity", 2),),
        )

    def test_orientation_experiment_row(self, small_workload):
        row = run_orientation_experiment(small_workload)
        data = row.as_dict()
        assert data["n"] == 128
        assert data["max_outdegree"] <= data["outdegree_bound"]
        assert data["outdegree_ok"] == 1.0
        assert data["rounds_ok"] == 1.0

    def test_coloring_experiment_row(self, small_workload):
        row = run_coloring_experiment(small_workload)
        data = row.as_dict()
        assert data["proper"] == 1.0
        assert data["colors"] <= data["colors_bound"]
        assert data["degeneracy_colors"] <= data["colors"] + 10

    def test_coloring_experiment_threads_workers_through(self, small_workload, monkeypatch):
        """ISSUE 4 satellite: the E2 runner used to accept ``workers`` and
        silently drop it; it must now reach ``color()``."""
        import repro.experiments.harness as harness

        captured = {}
        original = harness.color

        def spy(graph, **kwargs):
            captured.update(kwargs)
            return original(graph, **kwargs)

        monkeypatch.setattr(harness, "color", spy)
        run_coloring_experiment(small_workload, workers=3)
        assert captured["workers"] == 3

    def test_coloring_experiment_workers_change_path_not_result(self):
        """With a large-λ workload the engine actually fans out (the
        execution path changes), but the row is identical to serial."""
        from repro.core.coloring import color
        from repro.engine import PROCESS

        workload = Workload(
            name="dense",
            family="planted_dense",
            num_vertices=200,
            seed=17,
            params=(
                ("community_size", 70),
                ("community_probability", 0.7),
                ("background_probability", 0.02),
            ),
        )
        graph = workload.materialize()
        reference = color(graph, seed=0)
        assert reference.used_vertex_partitioning  # the fan-out branch runs
        from repro.engine import ParallelExecutor

        class RecordingExecutor(ParallelExecutor):
            def __init__(self):
                super().__init__(workers=2, backend=PROCESS)
                self.calls = []

            def map(self, fn, tasks, total_work=None, backend=None):
                tasks = [tuple(args) for args in tasks]
                self.calls.append(
                    (len(tasks), self.resolve_backend(len(tasks), total_work, backend))
                )
                return super().map(fn, tasks, total_work=total_work, backend=backend)

        recording = RecordingExecutor()
        with recording:
            parallel = color(graph, seed=0, executor=recording)
        # workers>1 changed the path: the parts fanned out through the
        # engine's process pool instead of the old sequential loop ...
        assert len(recording.calls) == 1
        num_tasks, backend = recording.calls[0]
        assert num_tasks > 1
        assert backend == PROCESS
        # ... but not the result.
        assert parallel.coloring.as_dict() == reference.coloring.as_dict()
        assert parallel.rounds == reference.rounds

        serial_row = run_coloring_experiment(workload, workers=1).as_dict()
        parallel_row = run_coloring_experiment(workload, workers=4).as_dict()
        assert serial_row == parallel_row

    def test_round_scaling_row(self, small_workload):
        row = run_round_scaling_experiment(small_workload)
        data = row.as_dict()
        assert data["rounds_ours"] >= 1
        assert data["rounds_local"] >= 1
        assert data["rounds_glm19"] >= 1

    def test_sweep_applies_runner(self, small_workload):
        rows = sweep([small_workload, small_workload], run_orientation_experiment)
        assert len(rows) == 2
