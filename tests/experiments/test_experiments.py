"""Tests for workloads, the experiment registry and the harness."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    run_coloring_experiment,
    run_orientation_experiment,
    run_round_scaling_experiment,
    sweep,
)
from repro.experiments.registry import all_experiments, get_experiment, get_runner
from repro.experiments.workloads import (
    Workload,
    dense_sweep,
    forests_sweep,
    power_law_sweep,
    standard_suite,
    union_forest_sweep,
)


class TestWorkloads:
    def test_materialize_is_deterministic(self):
        workload = Workload(
            name="w", family="union_forests", num_vertices=128, seed=3, params=(("arboricity", 2),)
        )
        assert workload.materialize() == workload.materialize()
        assert "union_forests" in workload.describe()

    def test_sweep_constructors(self):
        assert len(forests_sweep(sizes=(64, 128))) == 2
        assert len(union_forest_sweep(sizes=(64,), arboricities=(2, 4))) == 2
        assert len(power_law_sweep(sizes=(64,))) == 1
        assert len(dense_sweep(sizes=(100,))) == 1
        assert len(standard_suite()) >= 4

    def test_workload_sizes_match(self):
        for workload in union_forest_sweep(sizes=(64,), arboricities=(2,)):
            graph = workload.materialize()
            assert graph.num_vertices == 64


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [spec.experiment_id for spec in all_experiments()]
        assert ids == ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "S1", "S2"]

    def test_every_experiment_has_workloads_and_columns(self):
        for spec in all_experiments():
            assert spec.workloads, spec.experiment_id
            assert spec.columns, spec.experiment_id
            assert spec.bench_module.startswith("benchmarks/")

    def test_get_experiment_lookup(self):
        assert get_experiment("E3").experiment_id == "E3"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_runner_lookup_covers_harness_backed_experiments(self):
        for experiment_id in ("E1", "E2", "E3", "S1", "S2"):
            assert callable(get_runner(experiment_id))
        with pytest.raises(KeyError, match="bench_e4"):
            get_runner("E4")

    def test_s2_sweep_holds_the_update_budget_fixed(self):
        spec = get_experiment("S2")
        budgets = set()
        for workload in spec.workloads:
            params = dict(workload.params)
            budgets.add(params["num_batches"] * params["batch_size"])
        assert len(budgets) == 1


class TestHarness:
    @pytest.fixture
    def small_workload(self) -> Workload:
        return Workload(
            name="small",
            family="union_forests",
            num_vertices=128,
            seed=1,
            params=(("arboricity", 2),),
        )

    def test_orientation_experiment_row(self, small_workload):
        row = run_orientation_experiment(small_workload)
        data = row.as_dict()
        assert data["n"] == 128
        assert data["max_outdegree"] <= data["outdegree_bound"]
        assert data["outdegree_ok"] == 1.0
        assert data["rounds_ok"] == 1.0

    def test_coloring_experiment_row(self, small_workload):
        row = run_coloring_experiment(small_workload)
        data = row.as_dict()
        assert data["proper"] == 1.0
        assert data["colors"] <= data["colors_bound"]
        assert data["degeneracy_colors"] <= data["colors"] + 10

    def test_round_scaling_row(self, small_workload):
        row = run_round_scaling_experiment(small_workload)
        data = row.as_dict()
        assert data["rounds_ours"] >= 1
        assert data["rounds_local"] >= 1
        assert data["rounds_glm19"] >= 1

    def test_sweep_applies_runner(self, small_workload):
        rows = sweep([small_workload, small_workload], run_orientation_experiment)
        assert len(rows) == 2
