"""Tests for Algorithm 4 and the Lemma 3.13 driver (Claims 3.11/3.12)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validators import validate_partial_assignment
from repro.core.parameters import Parameters
from repro.core.partial_assignment import (
    partial_assignment_with_decay,
    partial_layer_assignment,
)
from repro.errors import ParameterError
from repro.graph import generators
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from tests.conftest import graphs


class TestClaim312OutDegree:
    def test_out_degree_bounded_by_declared(self, union_forest_graph):
        params = Parameters(k=6, budget=144, steps=3, num_layers=3)
        result = partial_layer_assignment(union_forest_graph, params)
        result.assignment.validate()
        assert result.assignment.out_degree == params.layer_out_degree

    def test_power_law_out_degree(self, power_law_graph):
        params = Parameters(k=8, budget=196, steps=3, num_layers=2)
        result = partial_layer_assignment(power_law_graph, params)
        result.assignment.validate()
        report = validate_partial_assignment(result.assignment)
        assert report.passed

    @settings(max_examples=15, deadline=None)
    @given(graphs(max_vertices=16), st.integers(min_value=2, max_value=5))
    def test_out_degree_property(self, graph, k):
        if graph.num_vertices == 0:
            return
        params = Parameters(k=k, budget=64, steps=3, num_layers=2)
        result = partial_layer_assignment(graph, params)
        result.assignment.validate()


class TestProgress:
    def test_bounded_degree_graph_fully_assigned(self, union_forest_graph):
        # When a = (s+1)k exceeds the maximum degree, every vertex qualifies
        # for some layer (the peeling on its own tree always succeeds).
        max_degree = union_forest_graph.max_degree()
        params = Parameters(k=max_degree, budget=4 * max_degree * max_degree, steps=3, num_layers=3)
        result = partial_layer_assignment(union_forest_graph, params)
        assert result.assignment.fraction_assigned() == 1.0

    def test_star_center_layered_above_leaves(self, small_star):
        # k = 1 keeps a = (s+1)·k = 4 below the hub degree 8, so the center
        # cannot land in the bottom layer.
        params = Parameters(k=1, budget=64, steps=3, num_layers=3)
        result = partial_layer_assignment(small_star, params)
        assignment = result.assignment
        # The leaves are assigned layer 1 and the center a strictly higher layer.
        assert assignment.layer(1) == 1
        assert assignment.layer(0) > 1

    def test_assigns_most_of_a_sparse_graph(self, small_forest):
        result = partial_assignment_with_decay(small_forest, k=2, budget=64)
        assert result.assignment.fraction_assigned() > 0.5


class TestLemma313Driver:
    def test_rejects_bad_parameters(self, small_forest):
        with pytest.raises(ParameterError):
            partial_assignment_with_decay(small_forest, k=0, budget=64)
        with pytest.raises(ParameterError):
            partial_assignment_with_decay(small_forest, k=2, budget=2)

    def test_out_degree_is_o_k_loglog(self, union_forest_graph):
        result = partial_assignment_with_decay(union_forest_graph, k=6, budget=144)
        result.assignment.validate()
        # a = (s+1)·k with s = O(log L): the "O(k log log n)" shape of Lemma 3.13.
        assert result.assignment.out_degree <= 6 * (result.params.steps + 1)

    def test_rounds_charged_scale_with_steps(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        result = partial_assignment_with_decay(
            union_forest_graph, k=6, budget=144, cluster=cluster
        )
        assert result.rounds_charged == cluster.stats.num_rounds
        assert result.rounds_charged <= 8 * (result.params.steps + 2)

    def test_unassigned_fraction_shrinks_with_budget(self, power_law_graph):
        small = partial_assignment_with_decay(power_law_graph, k=4, budget=36)
        large = partial_assignment_with_decay(power_law_graph, k=4, budget=400)
        assert large.assignment.fraction_assigned() >= small.assignment.fraction_assigned()
