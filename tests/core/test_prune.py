"""Tests for Algorithm 1 (LocalPrune): Claim 3.1 and Lemma 3.2."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layering import PartialLayerAssignment
from repro.core.prune import local_prune, prune_and_report, recursive_local_prune_reference
from repro.core.layering import num_paths_in
from repro.core.tree_view import TreeView
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from tests.conftest import graphs


def random_tree_view(graph, root, max_nodes, seed) -> TreeView:
    """Grow a random valid tree view of ``root`` by repeatedly expanding leaves."""
    rng = random.Random(seed)
    vertex_of = [root]
    parent = [-1]
    frontier = [0]
    while frontier and len(vertex_of) < max_nodes:
        node = frontier.pop(rng.randrange(len(frontier)))
        neighbors = list(graph.neighbors(vertex_of[node]))
        rng.shuffle(neighbors)
        for neighbor in neighbors[: rng.randint(0, len(neighbors))]:
            if len(vertex_of) >= max_nodes:
                break
            vertex_of.append(neighbor)
            parent.append(node)
            frontier.append(len(vertex_of) - 1)
    return TreeView(vertex_of, parent)


class TestLocalPruneBasics:
    def test_rejects_negative_k(self):
        with pytest.raises(ParameterError):
            local_prune(TreeView.single_node(0), -1)

    def test_single_node_unchanged(self):
        pruned = local_prune(TreeView.single_node(3), 2)
        assert pruned.num_nodes == 1
        assert pruned.map(0) == 3

    def test_root_with_few_children_collapses(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        pruned = local_prune(view, small_star.num_vertices)  # k >= #children
        assert pruned.num_nodes == 1

    def test_root_with_many_children_keeps_all_but_k(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        k = 3
        pruned = local_prune(view, k)
        # children are single-node subtrees: exactly k of them are removed.
        assert pruned.num_nodes == view.num_nodes - k

    def test_removes_heaviest_subtrees(self):
        # Root with three children: subtree sizes 3, 2, 1 (post-pruning sizes
        # are the same because each child has at most k=1 children... use k=1).
        #        0
        #      / | \
        #     1  2  3
        #    /|  |
        #   4 5  6
        graph = Graph(7, [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (2, 6)])
        view = TreeView(vertex_of=[0, 1, 2, 3, 4, 5, 6], parent=[-1, 0, 0, 0, 1, 1, 2])
        pruned = local_prune(view, 1)
        # k=1: node 1's children (2 of them > k) lose the heavier (both size 1,
        # tie toward smaller id kept... removed first k=1): node1 keeps 1 child.
        # At the root, child subtrees have pruned sizes {1: 2, 2: 1, 3: 1};
        # the heaviest (node 1's subtree) is removed.
        mapped = sorted(pruned.vertex_of)
        assert 1 not in mapped
        assert pruned.num_nodes == 3  # root + subtree of 2 (pruned to just {2}) + {3}
        del graph

    def test_prune_and_report(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        outcome = prune_and_report(view, 2)
        assert outcome.kept_nodes == outcome.pruned.num_nodes
        assert outcome.removed_nodes == view.num_nodes - outcome.pruned.num_nodes


class TestAgainstRecursiveReference:
    @settings(max_examples=30, deadline=None)
    @given(graphs(max_vertices=12), st.integers(min_value=0, max_value=4), st.integers(0, 10**6))
    def test_matches_pseudocode_transcription(self, graph, k, seed):
        if graph.num_vertices == 0:
            return
        root = seed % graph.num_vertices
        view = random_tree_view(graph, root, max_nodes=40, seed=seed)
        iterative = local_prune(view, k)
        recursive = recursive_local_prune_reference(view, k)
        assert iterative.vertex_of == recursive.vertex_of
        assert iterative.parent == recursive.parent


class TestClaim31MissingIncrease:
    @settings(max_examples=30, deadline=None)
    @given(graphs(max_vertices=14), st.integers(min_value=1, max_value=4), st.integers(0, 10**6))
    def test_missing_grows_by_at_most_k(self, graph, k, seed):
        """Claim 3.1: pruning increases |Missing(x)| by at most k for surviving nodes."""
        if graph.num_vertices == 0:
            return
        root = seed % graph.num_vertices
        view = random_tree_view(graph, root, max_nodes=50, seed=seed)
        pruned = local_prune(view, k)
        # Identify surviving nodes by matching their (path from root), which is
        # stable because pruning preserves ancestor chains; here we simply
        # re-walk both trees in parallel BFS order keyed by (depth, vertex path).
        original_missing_by_signature = {}
        for node in view.nodes():
            signature = tuple(view.vertex_of[x] for x in reversed(view.path_to_root(node)))
            count = view.missing_count(graph, node)
            previous = original_missing_by_signature.get(signature)
            if previous is None or count < previous:
                original_missing_by_signature[signature] = count
        for node in pruned.nodes():
            signature = tuple(pruned.vertex_of[x] for x in reversed(pruned.path_to_root(node)))
            before = original_missing_by_signature.get(signature)
            assert before is not None, "pruning must not create new nodes"
            assert pruned.missing_count(graph, node) <= before + k


class TestLemma32SizeBound:
    @settings(max_examples=25, deadline=None)
    @given(graphs(max_vertices=14), st.integers(0, 10**6))
    def test_pruned_size_bounded_by_num_paths_in(self, graph, seed):
        """Lemma 3.2: |V(T_pruned)| ≤ NumPathsIn(map(root)) when k ≥ d."""
        if graph.num_vertices == 0 or graph.num_edges == 0:
            return
        # Build a complete layer assignment by peeling at threshold d.
        d = max(2, graph.max_degree() // 2)
        assignment = PartialLayerAssignment.from_peeling(graph, threshold=d)
        if assignment.unassigned_vertices():
            d = graph.max_degree()
            assignment = PartialLayerAssignment.from_peeling(graph, threshold=d)
        assignment.validate()
        counts = num_paths_in(assignment)
        k = d  # k >= d as the lemma requires
        root = seed % graph.num_vertices
        view = random_tree_view(graph, root, max_nodes=60, seed=seed)
        pruned = local_prune(view, k)
        assert pruned.num_nodes <= counts[root]
