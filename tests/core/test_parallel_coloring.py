"""Parallel Lemma 2.2 coloring: round accounting and worker-count determinism.

Regression (ISSUE 4 tentpole): before the engine-backed refactor, ``color()``
walked the Lemma 2.2 vertex-partition parts in a sequential loop that charged
each part's layering and list-coloring rounds cumulatively —
``ColoringRun.rounds`` grew linearly with the part count, overstating round
complexity relative to the MPC model (which colors the parts simultaneously),
exactly the defect PR 3 fixed for the Lemma 2.1 orientation branch.  With
the sub-ledger fold, rounds are max-over-parts plus the constant
partition/offset overhead.
"""

from __future__ import annotations

import pytest

from repro.analysis.validators import validate_round_complexity
from repro.core.coloring import color
from repro.engine import BACKENDS, ParallelExecutor
from repro.graph.generators import planted_dense_subgraph, union_of_random_forests


def dense_graph():
    return planted_dense_subgraph(
        200, community_size=70, community_probability=0.7,
        background_probability=0.02, seed=17,
    )


class TestPartitionedRoundAccounting:
    def test_rounds_stay_below_the_sequential_sum(self):
        """Max-over-parts merge: the parallel charge must be strictly below
        what the old per-part cumulative loop would have recorded."""
        run = color(dense_graph(), seed=0)
        assert run.used_vertex_partitioning
        assert run.num_parts > 1
        assert len(run.part_rounds) > 1
        assert run.rounds < sum(run.part_rounds)

    def test_doubling_parts_leaves_rounds_within_theorem_bound(self):
        """Doubling k (and hence the part count) must not scale rounds
        linearly: both runs stay within the Theorem 1.2 envelope and the
        doubled run stays strictly below its own sequential sum."""
        graph = union_of_random_forests(512, arboricity=4, seed=3)
        base = color(graph, k=64, seed=1, force_vertex_partitioning=True)
        doubled = color(graph, k=128, seed=1, force_vertex_partitioning=True)
        assert doubled.num_parts >= 2 * base.num_parts - 1

        for run in (base, doubled):
            check = validate_round_complexity(run.rounds, graph.num_vertices)
            assert check.passed, (run.rounds, check.allowed)

        assert doubled.rounds < sum(doubled.part_rounds)
        # The whole point: rounds must not double when the parts do.  The
        # coloring fold has no merge tree — only the constant
        # partition/offset overhead — so the doubled run may not exceed the
        # base by more than the longest part's round difference.
        assert doubled.rounds <= base.rounds + 2

    def test_partition_and_offset_rounds_are_labelled(self):
        run = color(dense_graph(), seed=0)
        labels = run.cluster.stats.rounds_by_label
        assert labels["vertex-partition"] == 1
        assert labels["palette-offsets"] == 1

    def test_memory_peaks_fold_as_sums_into_the_parent(self):
        run = color(dense_graph(), seed=0)
        assert run.cluster.stats.peak_machine_memory_words > 0
        assert run.cluster.stats.peak_global_memory_words > 0

    def test_hpartitions_cover_every_part(self):
        """The fold rebuilds one HPartition per non-empty part from the
        shipped layer columns; together they cover the vertex set."""
        graph = dense_graph()
        run = color(graph, seed=0)
        covered = set()
        for hpartition in run.hpartitions:
            for local_vertex in hpartition.graph.vertices:
                covered.add(hpartition.graph.to_parent(local_vertex))
        assert covered == set(graph.vertices)


class TestWorkerDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_match_serial_colors_exactly(self, backend):
        graph = dense_graph()
        reference = color(graph, seed=5)
        with ParallelExecutor(workers=2, backend=backend) as executor:
            run = color(graph, seed=5, executor=executor)
        assert run.coloring.as_dict() == reference.coloring.as_dict()
        assert run.rounds == reference.rounds
        assert run.palette_size == reference.palette_size
        assert run.part_rounds == reference.part_rounds

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_are_byte_identical(self, workers):
        graph = dense_graph()
        reference = color(graph, seed=9)
        run = color(graph, seed=9, workers=workers)
        assert run.coloring.as_dict() == reference.coloring.as_dict()
        assert run.rounds == reference.rounds
        assert run.local_subroutine_rounds == reference.local_subroutine_rounds
        run.coloring.validate_proper()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_of_workers_and_backends_is_byte_identical(
        self, workers, backend, kernel_backend
    ):
        """ISSUE 6 acceptance: the full workers × backends matrix — including
        workers=4 on the process backend, which reads its parts from the
        shared-memory registry — matches the serial reference exactly.  The
        ``kernel_backend`` fixture adds the ISSUE 8 dimension: every cell
        re-runs per kernel backend with unchanged pinned results."""
        graph = dense_graph()
        reference = color(graph, seed=9)
        with ParallelExecutor(workers=workers, backend=backend) as executor:
            run = color(graph, seed=9, executor=executor)
        assert run.coloring.as_dict() == reference.coloring.as_dict()
        assert run.rounds == reference.rounds
        assert run.palette_size == reference.palette_size
        assert run.part_rounds == reference.part_rounds

    def test_small_lambda_branch_ignores_workers(self):
        """The single-part branch never fans out; workers must not change it."""
        graph = union_of_random_forests(128, arboricity=2, seed=4)
        reference = color(graph, seed=2)
        run = color(graph, seed=2, workers=4)
        assert not run.used_vertex_partitioning
        assert run.coloring.as_dict() == reference.coloring.as_dict()
        assert run.rounds == reference.rounds
