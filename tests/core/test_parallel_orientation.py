"""Parallel large-λ branch: round accounting and worker-count determinism.

Regression (ISSUE 3 satellite): before the superstep engine, ``orient()``
walked the Lemma 2.1 parts in a sequential loop that charged each part's
layering rounds cumulatively — ``OrientationRun.rounds`` grew linearly with
the part count, overstating round complexity relative to the MPC model
(which orients the parts simultaneously).  With the sub-ledger fold, rounds
are max-over-parts plus the ``⌈log2 L⌉`` merge-tree rounds.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.validators import validate_round_complexity
from repro.core.orientation import orient
from repro.engine import BACKENDS, ParallelExecutor
from repro.graph.generators import planted_dense_subgraph, union_of_random_forests


def dense_graph():
    return planted_dense_subgraph(
        200, community_size=70, community_probability=0.7,
        background_probability=0.02, seed=17,
    )


class TestPartitionedRoundAccounting:
    def test_rounds_stay_below_the_sequential_sum(self):
        """Max-over-parts merge: the parallel charge must be strictly below
        what the old per-part cumulative loop would have recorded."""
        run = orient(dense_graph(), seed=0)
        assert run.used_edge_partitioning
        assert run.num_parts > 1
        sequential_sum = sum(part.rounds_charged for part in run.partition_runs)
        # Even including the guess/partition/merge-tree overhead, the total
        # stays strictly below the bare sum of the per-part layering rounds
        # that the old sequential loop charged.
        assert run.rounds < sequential_sum

    def test_doubling_parts_leaves_rounds_within_theorem_bound(self):
        """Doubling k (and hence the part count) must not scale rounds
        linearly: both runs stay within the Theorem 1.1 envelope and the
        doubled run stays strictly below its own sequential sum."""
        graph = union_of_random_forests(512, arboricity=4, seed=3)
        base = orient(graph, k=64, seed=1, force_edge_partitioning=True)
        doubled = orient(graph, k=128, seed=1, force_edge_partitioning=True)
        assert doubled.num_parts >= 2 * base.num_parts - 1

        for run in (base, doubled):
            check = validate_round_complexity(run.rounds, graph.num_vertices)
            assert check.passed, (run.rounds, check.allowed)

        doubled_sequential = sum(p.rounds_charged for p in doubled.partition_runs)
        assert doubled.rounds < doubled_sequential
        # The whole point: rounds must not double when the parts do.
        assert doubled.rounds <= base.rounds + math.ceil(
            math.log2(max(doubled.num_parts, 2))
        )

    def test_merge_tree_rounds_are_labelled(self):
        run = orient(dense_graph(), seed=0)
        labels = run.cluster.stats.rounds_by_label
        # The merge tree spans the *non-empty* parts (one partition run per
        # non-empty part); empty parts are skipped before the fan-out.
        nonempty = len(run.partition_runs)
        assert nonempty > 1
        assert labels["merge-orientations"] == math.ceil(math.log2(nonempty))
        assert labels["edge-partition"] == 1

    def test_memory_peaks_fold_as_sums_into_the_parent(self):
        run = orient(dense_graph(), seed=0)
        assert run.cluster.stats.peak_machine_memory_words > 0
        assert run.cluster.stats.peak_global_memory_words > 0


class TestWorkerDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_match_serial_heads_exactly(self, backend):
        graph = dense_graph()
        reference = orient(graph, seed=5)
        run = orient(graph, seed=5, executor=ParallelExecutor(workers=2, backend=backend))
        assert run.orientation.direction == reference.orientation.direction
        assert run.rounds == reference.rounds
        assert run.max_outdegree == reference.max_outdegree

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_are_byte_identical(self, workers):
        graph = dense_graph()
        reference = orient(graph, seed=9)
        run = orient(graph, seed=9, workers=workers)
        assert bytes(run.orientation._heads) == bytes(reference.orientation._heads)
        assert run.orientation.graph == reference.orientation.graph
        assert run.rounds == reference.rounds

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_of_workers_and_backends_is_byte_identical(
        self, workers, backend, kernel_backend
    ):
        """ISSUE 6 acceptance: the full workers × backends matrix — including
        workers=4 on the process backend, which reads its parts from the
        shared-memory registry — matches the serial reference exactly.  The
        ``kernel_backend`` fixture re-runs every cell per kernel backend
        (ISSUE 8): the reference is computed under the same kernels, and the
        pinned bytes must not depend on them."""
        graph = dense_graph()
        reference = orient(graph, seed=9)
        with ParallelExecutor(workers=workers, backend=backend) as executor:
            run = orient(graph, seed=9, executor=executor)
        assert bytes(run.orientation._heads) == bytes(reference.orientation._heads)
        assert run.rounds == reference.rounds
        assert run.max_outdegree == reference.max_outdegree
