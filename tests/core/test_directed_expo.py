"""Tests for the Lemma 4.1 directed exponentiation helper."""

from __future__ import annotations

from repro.core.directed_expo import directed_reachability, out_neighbors_by_layer
from repro.graph import generators
from repro.graph.graph import Graph
from repro.local.peeling import peeling_layers_reference
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


class TestOutNeighborsByLayer:
    def test_cross_layer_edges_point_up(self, small_path):
        layer_of = {0: 1, 1: 2, 2: 3, 3: 3, 4: 1}
        out = out_neighbors_by_layer(small_path, layer_of)
        assert out[0] == [1]          # 1 is in a higher layer
        assert out[1] == [2]
        assert 2 in out[3] and 3 in out[2]  # same layer: bidirectional
        assert out[4] == [3]          # 3 is higher, so the edge points 4 -> 3
        assert 4 not in out[3]


class TestDirectedReachability:
    def test_distance_limits(self, small_path):
        layer_of = {v: v + 1 for v in small_path.vertices}
        result = directed_reachability(small_path, layer_of, [0], max_distance=2)
        assert result.reachable[0] == {0, 1, 2}
        result = directed_reachability(small_path, layer_of, [0], max_distance=10)
        assert result.reachable[0] == set(small_path.vertices)

    def test_only_directed_paths_count(self, small_path):
        layer_of = {0: 2, 1: 1, 2: 1, 3: 1, 4: 2}
        # Vertex 1 can reach 0 (higher layer) and 2 (same layer), then 3, 4.
        result = directed_reachability(small_path, layer_of, [1], max_distance=5)
        assert result.reachable[1] == {0, 1, 2, 3, 4}
        # Vertex 0 is a sink (its only neighbor is lower): reaches only itself.
        result = directed_reachability(small_path, layer_of, [0], max_distance=5)
        assert result.reachable[0] == {0}

    def test_set_size_limit_truncates(self):
        graph = generators.complete_graph(30)
        layer_of = {v: 1 for v in graph.vertices}
        result = directed_reachability(graph, layer_of, [0], max_distance=3, set_size_limit=5)
        assert result.max_set_size >= 5

    def test_cluster_rounds_charged(self, union_forest_graph):
        partition = peeling_layers_reference(union_forest_graph, threshold=6)
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        starts = list(union_forest_graph.vertices)[:10]
        result = directed_reachability(
            union_forest_graph, partition.layer_of, starts, max_distance=8, cluster=cluster
        )
        assert result.rounds_charged >= 4
        assert cluster.stats.num_rounds >= 4

    def test_reachability_respects_hpartition_orientation(self, union_forest_graph):
        partition = peeling_layers_reference(union_forest_graph, threshold=6)
        layer_of = partition.layer_of
        result = directed_reachability(union_forest_graph, layer_of, [0], max_distance=3)
        # Every reached vertex (other than the start) must be reachable along
        # edges that never decrease the layer except inside a layer.
        for w in result.reachable[0]:
            assert w == 0 or layer_of[w] >= 1

    def test_empty_start_set(self):
        graph = Graph(3, [(0, 1)])
        result = directed_reachability(graph, {0: 1, 1: 1, 2: 1}, [], max_distance=2)
        assert result.reachable == {}
        assert result.max_set_size == 0
