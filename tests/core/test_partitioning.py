"""Tests for Lemma 2.1 (edge partitioning) and Lemma 2.2 (vertex partitioning)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    number_of_parts,
    random_edge_partition,
    random_vertex_partition,
)
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.arboricity import degeneracy
from tests.conftest import graphs


class TestNumberOfParts:
    def test_formula(self):
        assert number_of_parts(0, 1024) == 1
        assert number_of_parts(10, 1024) == 1
        assert number_of_parts(100, 1024) == 10
        with pytest.raises(ParameterError):
            number_of_parts(-1, 10)


class TestEdgePartition:
    def test_parts_cover_edges_exactly(self, dense_community_graph):
        partition = random_edge_partition(dense_community_graph, arboricity_bound=40, seed=1)
        assert partition.covers(dense_community_graph)

    def test_each_part_keeps_vertex_set(self, dense_community_graph):
        partition = random_edge_partition(dense_community_graph, arboricity_bound=40, seed=1)
        for part in partition.parts:
            assert part.num_vertices == dense_community_graph.num_vertices

    def test_explicit_part_count(self, union_forest_graph):
        partition = random_edge_partition(union_forest_graph, arboricity_bound=3, num_parts=4, seed=2)
        assert partition.num_parts == 4
        with pytest.raises(ParameterError):
            random_edge_partition(union_forest_graph, arboricity_bound=3, num_parts=0)

    def test_lemma_2_1_reduces_arboricity(self):
        # A dense planted community: λ ≫ log n; every random part must have
        # arboricity O(log n) (checked through the degeneracy ≤ 2λ proxy).
        graph = generators.planted_dense_subgraph(
            300, community_size=80, community_probability=0.6, background_probability=0.01, seed=3
        )
        original = degeneracy(graph)
        log_n = math.log2(graph.num_vertices)
        assert original > log_n  # the premise: λ is genuinely large here
        partition = random_edge_partition(graph, arboricity_bound=original, seed=4)
        worst = max(degeneracy(part) for part in partition.parts)
        assert worst <= 4 * log_n
        assert worst < original

    def test_deterministic_given_seed(self, dense_community_graph):
        a = random_edge_partition(dense_community_graph, arboricity_bound=40, seed=9)
        b = random_edge_partition(dense_community_graph, arboricity_bound=40, seed=9)
        assert [p.edges for p in a.parts] == [p.edges for p in b.parts]


class TestVertexPartition:
    def test_parts_cover_vertices_exactly(self, dense_community_graph):
        partition = random_vertex_partition(dense_community_graph, arboricity_bound=40, seed=1)
        assert partition.covers(dense_community_graph)

    def test_parts_are_induced_subgraphs(self, dense_community_graph):
        partition = random_vertex_partition(dense_community_graph, arboricity_bound=40, seed=1)
        for part in partition.parts:
            for (u, v) in part.edges:
                assert dense_community_graph.has_edge(part.to_parent(u), part.to_parent(v))

    def test_lemma_2_2_reduces_arboricity(self):
        graph = generators.planted_dense_subgraph(
            300, community_size=80, community_probability=0.6, background_probability=0.01, seed=5
        )
        original = degeneracy(graph)
        log_n = math.log2(graph.num_vertices)
        partition = random_vertex_partition(graph, arboricity_bound=original, seed=6)
        worst = max((degeneracy(part) for part in partition.parts if part.num_vertices), default=0)
        assert worst <= 4 * log_n
        assert worst < original

    def test_explicit_part_count_and_errors(self, union_forest_graph):
        partition = random_vertex_partition(
            union_forest_graph, arboricity_bound=3, num_parts=3, seed=2
        )
        assert partition.num_parts == 3
        with pytest.raises(ParameterError):
            random_vertex_partition(union_forest_graph, arboricity_bound=3, num_parts=0)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=20), st.integers(min_value=1, max_value=6), st.integers(0, 10**6))
def test_partitions_always_cover(graph, parts, seed):
    edge_partition = random_edge_partition(graph, arboricity_bound=1, num_parts=parts, seed=seed)
    assert edge_partition.covers(graph)
    assert sum(p.num_edges for p in edge_partition.parts) == graph.num_edges
    vertex_partition = random_vertex_partition(graph, arboricity_bound=1, num_parts=parts, seed=seed)
    assert vertex_partition.covers(graph)
    assert sum(p.num_vertices for p in vertex_partition.parts) == graph.num_vertices
