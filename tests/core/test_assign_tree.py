"""Tests for Algorithm 3 (PartialLayerAssignmentTree): Lemmas 3.8 and 3.10."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assign_tree import partial_layer_assignment_tree
from repro.core.exponentiate import exponentiate_and_local_prune
from repro.core.layering import PartialLayerAssignment, UNASSIGNED
from repro.core.parameters import Parameters
from repro.core.tree_view import TreeView
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from tests.conftest import graphs


class TestBasics:
    def test_rejects_bad_parameters(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        with pytest.raises(ParameterError):
            partial_layer_assignment_tree(small_star, view, out_degree_parameter=-1, num_layers=2)
        with pytest.raises(ParameterError):
            partial_layer_assignment_tree(small_star, view, out_degree_parameter=2, num_layers=0)

    def test_star_view_layers(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        result = partial_layer_assignment_tree(small_star, view, out_degree_parameter=1, num_layers=3)
        # Leaves of the view have missing = {0} (their only neighbor) and no
        # children: 0 + 1 <= 1, so they land in layer 1.  The root has 8
        # children and no missing neighbors: once all children are assigned to
        # layer 1, it qualifies in the next iteration and lands in layer 2.
        for node in view.nodes():
            if node == view.root:
                assert result.layer(node) == 2
            else:
                assert result.layer(node) == 1

    def test_insufficient_layers_leave_infinity(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        result = partial_layer_assignment_tree(small_star, view, out_degree_parameter=1, num_layers=1)
        # With a single layer the root never qualifies and stays at ∞.
        assert result.layer(view.root) == math.inf

    def test_generous_parameter_assigns_everything_layer_one(self, union_forest_graph):
        view = TreeView.star_of_neighbors(union_forest_graph, 0)
        a = union_forest_graph.max_degree() + 1
        result = partial_layer_assignment_tree(union_forest_graph, view, a, num_layers=2)
        assert all(result.layer(node) == 1 for node in view.nodes())

    def test_vertex_layers_takes_minimum_over_occurrences(self):
        # A path graph view where vertex 2 appears twice at different layers.
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 2)])
        view = TreeView(vertex_of=[0, 1, 2, 2, 3], parent=[-1, 0, 1, 0, 3])
        result = partial_layer_assignment_tree(graph, view, out_degree_parameter=3, num_layers=3)
        layers = result.vertex_layers()
        occurrences = [result.layer(2), result.layer(3)]
        assert layers[2] == min(occurrences)


class TestLemma39RootBound:
    @settings(max_examples=10, deadline=None)
    @given(graphs(max_vertices=10, max_edge_fraction=0.35), st.integers(0, 10**6))
    def test_root_layer_at_most_reference_layer(self, graph, seed):
        """Lemma 3.9: for vertices with NumPathsIn ≤ √B, the root's tree layer ≤ ℓ_G(v)."""
        if graph.num_vertices == 0:
            return
        from repro.core.layering import num_paths_in

        d = max(2, graph.max_degree() // 2)
        reference = PartialLayerAssignment.from_peeling(graph, threshold=d)
        if reference.unassigned_vertices():
            d = max(2, graph.max_degree())
            reference = PartialLayerAssignment.from_peeling(graph, threshold=d)
        reference.validate()
        counts = num_paths_in(reference)
        k = d
        budget = min(max(64, max(counts.values()) ** 2 + 1), 4096)
        num_layers = max(reference.num_layers, 1)
        steps = max(int(math.ceil(math.log2(max(num_layers, 2)))) + 1, 2)
        params = Parameters(k=k, budget=budget, steps=steps, num_layers=num_layers)
        result = exponentiate_and_local_prune(graph, params)
        a = (steps + 1) * k
        sqrt_budget = params.sqrt_budget
        for v in graph.vertices:
            if counts[v] > sqrt_budget:
                continue  # the lemma's hypothesis does not cover this vertex
            tree = result.tree(v)
            tree_assignment = partial_layer_assignment_tree(graph, tree, a, num_layers)
            root_layer = tree_assignment.layer(tree.root)
            assert root_layer <= reference.layer(v), seed


class TestLemma310Projection:
    @settings(max_examples=15, deadline=None)
    @given(graphs(max_vertices=12), st.integers(min_value=1, max_value=6), st.integers(0, 10**6))
    def test_projected_out_degree_bounded_by_a(self, graph, a, seed):
        """Lemma 3.10: projecting tree layers to vertices keeps out-degree ≤ a."""
        if graph.num_vertices == 0:
            return
        rng = random.Random(seed)
        root = rng.randrange(graph.num_vertices)
        # A simple two-level valid view: the root's star, each leaf expanded once.
        view = TreeView.star_of_neighbors(graph, root)
        tree_assignment = partial_layer_assignment_tree(graph, view, a, num_layers=3)
        projected = tree_assignment.vertex_layers()
        layer_of = {v: projected.get(v, UNASSIGNED) for v in graph.vertices}
        assignment = PartialLayerAssignment(
            graph, layer_of, num_layers=3, out_degree=a
        )
        assignment.validate()
