"""Tests for the Theorem 1.2 coloring pipeline."""

from __future__ import annotations

import pytest

from repro.analysis.validators import validate_coloring_quality, validate_round_complexity
from repro.core.coloring import color, coloring_palette_bound
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.arboricity import arboricity_bounds
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


class TestBasicCorrectness:
    def test_empty_graph(self):
        run = color(Graph(0))
        assert run.num_colors == 0

    def test_single_vertex(self):
        run = color(Graph(1))
        assert run.coloring.is_proper()
        assert run.num_colors == 1

    def test_rejects_bad_palette_slack(self, small_forest):
        with pytest.raises(ParameterError):
            color(small_forest, palette_slack=1)

    def test_always_proper(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        run.coloring.validate_proper()

    def test_deterministic_given_seed(self, union_forest_graph):
        a = color(union_forest_graph, seed=3)
        b = color(union_forest_graph, seed=3)
        assert a.coloring.as_dict() == b.coloring.as_dict()


class TestTheorem12Quality:
    def test_forest_few_colors(self, small_forest):
        run = color(small_forest, seed=0)
        run.coloring.validate_proper()
        assert run.num_colors <= coloring_palette_bound(1, small_forest.num_vertices)

    def test_star_uses_constant_colors(self, small_star):
        run = color(small_star, seed=0)
        run.coloring.validate_proper()
        # Δ = n-1 but λ = 1: the palette must not scale with the hub degree.
        assert run.num_colors <= 6

    def test_union_forest_palette(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        bounds = arboricity_bounds(union_forest_graph, exact_density=False)
        report = validate_coloring_quality(
            run.coloring, bounds.upper, union_forest_graph.num_vertices
        )
        assert report.passed

    def test_power_law_beats_delta_plus_one(self, power_law_graph):
        run = color(power_law_graph, seed=0)
        run.coloring.validate_proper()
        assert run.num_colors < power_law_graph.max_degree() / 2

    def test_colors_within_palette(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        assert run.coloring.max_color() < run.palette_size
        assert run.num_colors <= run.palette_size


class TestBranchesAndRounds:
    def test_round_complexity(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        report = validate_round_complexity(run.rounds, union_forest_graph.num_vertices)
        assert report.passed

    def test_small_lambda_avoids_vertex_partitioning(self, small_forest):
        run = color(small_forest, seed=0)
        assert not run.used_vertex_partitioning
        assert run.num_parts == 1
        assert len(run.hpartitions) == 1

    def test_large_lambda_uses_vertex_partitioning(self, dense_community_graph):
        run = color(dense_community_graph, seed=0)
        assert run.used_vertex_partitioning
        assert run.num_parts > 1
        run.coloring.validate_proper()

    def test_parts_use_disjoint_palettes(self, dense_community_graph):
        run = color(dense_community_graph, seed=1, force_vertex_partitioning=True)
        run.coloring.validate_proper()
        # With disjoint per-part palettes the total palette is the sum of the
        # parts' palettes; the distinct colors used can never exceed it.
        assert run.num_colors <= run.palette_size

    def test_external_cluster_accumulates_rounds(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        run = color(union_forest_graph, seed=0, cluster=cluster)
        assert run.rounds == cluster.stats.num_rounds

    def test_local_subroutine_rounds_recorded(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        assert run.local_subroutine_rounds >= 1

    def test_colors_to_arboricity_ratio(self, union_forest_graph):
        run = color(union_forest_graph, seed=0)
        assert run.colors_to_arboricity_ratio() == pytest.approx(
            run.num_colors / run.arboricity_proxy
        )
