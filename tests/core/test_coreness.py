"""Tests for the coreness decomposition application."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coreness import (
    approximate_coreness,
    densest_subgraph_from_coreness,
    exact_coreness,
    geometric_guesses,
)
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from tests.conftest import graphs


class TestExactCoreness:
    def test_forest_cores_are_one(self, small_forest):
        cores = exact_coreness(small_forest)
        assert max(cores.values()) == 1

    def test_clique_cores(self):
        cores = exact_coreness(generators.complete_graph(6))
        assert all(value == 5 for value in cores.values())

    def test_star_center_core_is_one(self, small_star):
        cores = exact_coreness(small_star)
        assert cores[0] == 1


class TestGeometricGuesses:
    def test_covers_upper_bound(self):
        guesses = geometric_guesses(37, epsilon=0.5)
        assert guesses[0] == 1
        assert guesses[-1] >= 37
        assert guesses == sorted(set(guesses))

    def test_trivial_bound(self):
        assert geometric_guesses(0, 0.5) == [1]


class TestApproximateCoreness:
    def test_rejects_bad_epsilon(self, small_forest):
        with pytest.raises(ParameterError):
            approximate_coreness(small_forest, epsilon=0.0)

    def test_empty_graph(self):
        result = approximate_coreness(Graph(0))
        assert result.estimates == {}

    def test_every_vertex_estimated(self, power_law_graph):
        result = approximate_coreness(power_law_graph, epsilon=0.5)
        assert set(result.estimates) == set(power_law_graph.vertices)
        assert result.rounds >= 1

    def test_estimates_within_factor_of_exact(self, power_law_graph):
        epsilon = 0.5
        result = approximate_coreness(power_law_graph, epsilon=epsilon)
        exact = exact_coreness(power_law_graph)
        for v in power_law_graph.vertices:
            estimate = result.estimates[v]
            core = max(exact[v], 1)
            assert estimate <= (1 + epsilon) * core + 1
            assert 2 * (1 + epsilon) * estimate + 1 >= core

    def test_dense_community_detected(self, dense_community_graph):
        result = approximate_coreness(dense_community_graph, epsilon=0.5)
        exact = exact_coreness(dense_community_graph)
        deep_core = [v for v in dense_community_graph.vertices if exact[v] == max(exact.values())]
        # The estimates of deep-core vertices must be clearly above the
        # background's (vertices outside the planted community).
        background = [v for v in dense_community_graph.vertices if v >= 70]
        avg_core = sum(result.estimates[v] for v in deep_core) / len(deep_core)
        avg_background = sum(result.estimates[v] for v in background) / len(background)
        assert avg_core > 3 * avg_background

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_vertices=18), st.floats(min_value=0.25, max_value=1.0))
    def test_factor_property(self, graph, epsilon):
        if graph.num_vertices == 0:
            return
        result = approximate_coreness(graph, epsilon=epsilon)
        exact = exact_coreness(graph)
        for v in graph.vertices:
            estimate = result.estimates[v]
            core = exact[v]
            assert estimate <= (1 + epsilon) * max(core, 1) + 1
            assert 2 * (1 + epsilon) * estimate + 1 >= core


class TestDensestSubgraphFromCoreness:
    def test_finds_planted_community(self, dense_community_graph):
        result = approximate_coreness(dense_community_graph, epsilon=0.5)
        core, density = densest_subgraph_from_coreness(dense_community_graph, result)
        assert density > 5.0
        inside = sum(1 for v in core if v < 70)
        assert inside / max(len(core), 1) > 0.7

    def test_empty_graph(self):
        result = approximate_coreness(Graph(0))
        core, density = densest_subgraph_from_coreness(Graph(0), result)
        assert core == [] and density == 0.0

    def test_density_at_least_half_of_exact(self, power_law_graph):
        from repro.graph.arboricity import densest_subgraph_density

        result = approximate_coreness(power_law_graph, epsilon=0.5)
        _core, density = densest_subgraph_from_coreness(power_law_graph, result)
        exact = densest_subgraph_density(power_law_graph)
        assert density >= exact / (2 * (1 + 0.5)) - 1e-9
