"""Tests for Algorithm 2 (ExponentiateAndLocalPrune): Claims 3.3–3.6."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exponentiate import exponentiate_and_local_prune
from repro.core.parameters import Parameters
from repro.graph import generators
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from tests.conftest import graphs


def run(graph, k=3, budget=64, steps=3, num_layers=2, cluster=None):
    params = Parameters(k=k, budget=budget, steps=steps, num_layers=num_layers)
    return params, exponentiate_and_local_prune(graph, params, cluster=cluster)


class TestInitialisation:
    def test_low_degree_vertices_start_active_with_star_views(self, small_forest):
        params, result = run(small_forest, budget=64, steps=1, num_layers=1)
        for v in small_forest.vertices:
            tree = result.tree(v)
            assert tree.map(tree.root) == v
        del params

    def test_high_degree_vertices_start_inactive(self, small_star):
        # budget smaller than the center's degree: the center starts inactive.
        params, result = run(small_star, budget=5, steps=2, num_layers=2)
        assert result.active[1] in (True, False)  # leaves may stay active
        center_tree = result.tree(0)
        assert center_tree.num_nodes <= params.budget
        assert not result.active[0] or small_star.degree(0) < params.budget


class TestClaim33ValidMappings:
    def test_mappings_stay_valid(self, union_forest_graph):
        _, result = run(union_forest_graph, k=4, budget=100, steps=3, num_layers=2)
        for v in union_forest_graph.vertices:
            assert result.tree(v).is_valid_mapping(union_forest_graph)

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_vertices=14), st.integers(min_value=1, max_value=3))
    def test_mappings_valid_property(self, graph, steps):
        if graph.num_vertices == 0:
            return
        _, result = run(graph, k=2, budget=36, steps=steps, num_layers=min(2, 2**steps - 1))
        for v in graph.vertices:
            assert result.tree(v).is_valid_mapping(graph)


class TestClaim34BudgetBound:
    def test_trees_never_exceed_budget(self, power_law_graph):
        params, result = run(power_law_graph, k=6, budget=81, steps=3, num_layers=2)
        assert result.max_tree_nodes <= params.budget
        for v in power_law_graph.vertices:
            assert result.tree(v).num_nodes <= params.budget

    @settings(max_examples=20, deadline=None)
    @given(graphs(max_vertices=16), st.integers(min_value=1, max_value=3))
    def test_budget_property(self, graph, steps):
        if graph.num_vertices == 0:
            return
        params, result = run(graph, k=2, budget=25, steps=steps, num_layers=min(2, 2**steps - 1))
        assert result.max_tree_nodes <= params.budget


class TestClaim36MissingBound:
    def test_root_missing_bound_for_active_vertices(self, union_forest_graph):
        params, result = run(union_forest_graph, k=4, budget=144, steps=3, num_layers=2)
        s, k = params.steps, params.k
        for v in union_forest_graph.vertices:
            if not result.active[v]:
                continue
            tree = result.tree(v)
            # The root is within distance < 2^s of itself and maps to an
            # active vertex, so Claim 3.6 bounds its missing count by s*k.
            assert tree.missing_count(union_forest_graph, tree.root) <= s * k

    def test_all_shallow_active_nodes_bounded(self, small_forest):
        params, result = run(small_forest, k=2, budget=64, steps=2, num_layers=2)
        s, k = params.steps, params.k
        for v in small_forest.vertices:
            tree = result.tree(v)
            depths = tree.depths()
            for node in tree.nodes():
                if depths[node] < 2**s and result.active.get(tree.map(node), False):
                    assert tree.missing_count(small_forest, node) <= s * k


class TestResourceAccounting:
    def test_rounds_linear_in_steps(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        params, _ = run(union_forest_graph, k=4, budget=64, steps=3, num_layers=2, cluster=cluster)
        # init + one communication round + one storage update per step, plus
        # possible oversized splits: O(s) rounds overall (Claim 3.5).
        assert cluster.stats.num_rounds <= 6 * params.steps + 4
        assert cluster.stats.num_rounds >= params.steps

    def test_deactivation_recorded(self, power_law_graph):
        _, result = run(power_law_graph, k=2, budget=16, steps=3, num_layers=2)
        # With such a tiny budget some hubs must deactivate.
        assert result.num_active() < power_law_graph.num_vertices
        assert all(step >= 1 for step in result.deactivated_at_step.values())
