"""Tests for partial layer assignments, Claim 2.3 and Lemma 2.4."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layering import (
    UNASSIGNED,
    PartialLayerAssignment,
    enumerate_strictly_increasing_paths,
    lemma_2_4_upper_bound,
    num_paths_in,
    num_paths_out,
)
from repro.errors import InvalidLayeringError
from repro.graph import generators
from repro.graph.graph import Graph
from tests.conftest import graphs


def random_assignment(graph, num_layers, out_degree, seed, assign_probability=0.8):
    """A random layer map (not necessarily respecting the out-degree bound)."""
    rng = random.Random(seed)
    layer_of = {
        v: (rng.randint(1, num_layers) if rng.random() < assign_probability else UNASSIGNED)
        for v in graph.vertices
    }
    return PartialLayerAssignment(
        graph=graph, layer_of=layer_of, num_layers=num_layers, out_degree=out_degree
    )


class TestConstructionAndQueries:
    def test_requires_entry_for_every_vertex(self, triangle):
        with pytest.raises(InvalidLayeringError):
            PartialLayerAssignment(triangle, {0: 1, 1: 2}, num_layers=3, out_degree=2)

    def test_rejects_out_of_range_layers(self, triangle):
        with pytest.raises(InvalidLayeringError):
            PartialLayerAssignment(
                triangle, {0: 1, 1: 5, 2: UNASSIGNED}, num_layers=3, out_degree=2
            )

    def test_basic_queries(self, small_path):
        assignment = PartialLayerAssignment(
            small_path,
            {0: 1, 1: 2, 2: UNASSIGNED, 3: 1, 4: 2},
            num_layers=2,
            out_degree=2,
        )
        assert assignment.is_assigned(0)
        assert not assignment.is_assigned(2)
        assert assignment.assigned_vertices() == [0, 1, 3, 4]
        assert assignment.unassigned_vertices() == [2]
        assert assignment.fraction_assigned() == pytest.approx(0.8)
        assert assignment.observed_out_degree(0) == 1  # neighbor 1 at layer 2 >= 1

    def test_fully_unassigned(self, triangle):
        assignment = PartialLayerAssignment.fully_unassigned(triangle, 4, 2)
        assert assignment.assigned_vertices() == []
        assignment.validate()  # vacuously valid


class TestValidation:
    def test_validate_passes_for_peeling(self, union_forest_graph):
        assignment = PartialLayerAssignment.from_peeling(union_forest_graph, threshold=6)
        assignment.validate()
        assert assignment.max_observed_out_degree() <= 6

    def test_validate_detects_violation(self, small_star):
        # Center in layer 1, leaves all in layer 2: the center has 8 neighbors
        # in a higher layer, so out-degree 2 must fail.
        layer_of = {0: 1.0}
        layer_of.update({v: 2.0 for v in range(1, small_star.num_vertices)})
        assignment = PartialLayerAssignment(small_star, layer_of, num_layers=2, out_degree=2)
        with pytest.raises(InvalidLayeringError):
            assignment.validate()


class TestClaim23MinCombine:
    def test_min_is_taken_pointwise(self, small_path):
        a = PartialLayerAssignment(
            small_path, {0: 2, 1: 1, 2: UNASSIGNED, 3: 2, 4: 1}, num_layers=2, out_degree=2
        )
        b = PartialLayerAssignment(
            small_path, {0: 1, 1: 2, 2: 2, 3: UNASSIGNED, 4: 1}, num_layers=2, out_degree=2
        )
        combined = a.combine_min(b)
        assert combined.layer(0) == 1
        assert combined.layer(1) == 1
        assert combined.layer(2) == 2
        assert combined.layer(3) == 2
        assert combined.layer(4) == 1

    def test_rejects_mismatched_parameters(self, small_path):
        a = PartialLayerAssignment.fully_unassigned(small_path, 2, 2)
        b = PartialLayerAssignment.fully_unassigned(small_path, 3, 2)
        with pytest.raises(InvalidLayeringError):
            a.combine_min(b)

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_vertices=14), st.integers(min_value=0, max_value=10**6))
    def test_claim_2_3_property(self, graph, seed):
        """Claim 2.3: the min of two *valid* partial assignments is valid."""
        threshold = max(2, graph.max_degree() // 2)
        rng = random.Random(seed)
        # Build two valid assignments from peelings of random vertex orders by
        # dropping a random subset of vertices to UNASSIGNED.
        def valid_assignment(salt: int) -> PartialLayerAssignment:
            base = PartialLayerAssignment.from_peeling(graph, threshold=graph.max_degree() or 1)
            layer_of = dict(base.layer_of)
            local = random.Random(seed + salt)
            for v in graph.vertices:
                if local.random() < 0.3:
                    layer_of[v] = UNASSIGNED
            candidate = PartialLayerAssignment(
                graph, layer_of, num_layers=base.num_layers, out_degree=graph.max_degree() or 1
            )
            candidate.validate()
            return candidate

        a = valid_assignment(1)
        b = valid_assignment(2)
        combined = a.combine_min(b)
        combined.validate()
        del rng, threshold


class TestFromPeelingNumLayers:
    def test_num_layers_matches_deepest_layer(self):
        """Regression: path(6) at threshold 2 peels everything in one round,
        so the declared num_layers must be 1, not 2 (the seed reported the
        loop counter one past the deepest layer, inflating every L-derived
        round bound)."""
        graph = generators.path(6)
        assignment = PartialLayerAssignment.from_peeling(graph, threshold=2)
        assert all(assignment.layer(v) == 1 for v in graph.vertices)
        assert assignment.num_layers == 1

    def test_num_layers_on_deep_tree(self):
        graph = generators.complete_ary_tree(3, 40)
        assignment = PartialLayerAssignment.from_peeling(graph, threshold=3)
        deepest = max(
            assignment.layer(v) for v in graph.vertices if assignment.is_assigned(v)
        )
        assert assignment.num_layers == deepest

    def test_num_layers_at_least_one_when_nothing_assigned(self, triangle):
        # Threshold 0 peels nothing from a triangle; num_layers clamps to 1.
        assignment = PartialLayerAssignment.from_peeling(triangle, threshold=0)
        assert assignment.assigned_vertices() == []
        assert assignment.num_layers == 1

    def test_explicit_num_layers_is_respected(self):
        graph = generators.path(6)
        assignment = PartialLayerAssignment.from_peeling(graph, threshold=2, num_layers=5)
        assert assignment.num_layers == 5

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_vertices=16), st.integers(min_value=0, max_value=8))
    def test_num_layers_invariant_property(self, graph, threshold):
        """Whenever anything is assigned, num_layers equals the max assigned layer."""
        assignment = PartialLayerAssignment.from_peeling(graph, threshold=threshold)
        assigned = assignment.assigned_vertices()
        if assigned:
            assert assignment.num_layers == max(assignment.layer(v) for v in assigned)
        else:
            assert assignment.num_layers == 1


class TestPathCounts:
    def test_single_vertex_paths(self):
        g = Graph(1)
        assignment = PartialLayerAssignment(g, {0: 1}, num_layers=1, out_degree=1)
        assert num_paths_in(assignment) == {0: 1}
        assert num_paths_out(assignment) == {0: 1}

    def test_increasing_path_graph(self, small_path):
        assignment = PartialLayerAssignment(
            small_path, {v: v + 1 for v in small_path.vertices}, num_layers=5, out_degree=1
        )
        counts_in = num_paths_in(assignment)
        # Vertex i is reached by exactly i+1 strictly increasing paths
        # (one from each starting point 0..i).
        assert counts_in == {v: v + 1 for v in small_path.vertices}
        counts_out = num_paths_out(assignment)
        assert counts_out == {v: 5 - v for v in small_path.vertices}

    def test_unassigned_vertices_have_zero_paths(self, small_path):
        assignment = PartialLayerAssignment(
            small_path,
            {0: 1, 1: 2, 2: UNASSIGNED, 3: 1, 4: 2},
            num_layers=2,
            out_degree=2,
        )
        counts = num_paths_in(assignment)
        assert counts[2] == 0
        assert counts[0] == 1

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_vertices=12), st.integers(min_value=1, max_value=4), st.integers(0, 10**6))
    def test_dp_matches_enumeration(self, graph, num_layers, seed):
        """The DP path counts equal brute-force enumeration on small graphs."""
        rng = random.Random(seed)
        layer_of = {v: float(rng.randint(1, num_layers)) for v in graph.vertices}
        assignment = PartialLayerAssignment(
            graph, layer_of, num_layers=num_layers, out_degree=graph.num_vertices
        )
        counts_out = num_paths_out(assignment)
        for v in graph.vertices:
            paths = enumerate_strictly_increasing_paths(assignment, v)
            assert counts_out[v] == len(paths)

    @settings(max_examples=30, deadline=None)
    @given(graphs(max_vertices=12), st.integers(0, 10**6))
    def test_lemma_2_4_total_bound(self, graph, seed):
        """Lemma 2.4: Σ NumPathsIn = Σ NumPathsOut ≤ |V| · Σ_j d^j for complete assignments."""
        rng = random.Random(seed)
        # A complete assignment from peeling at threshold max degree is valid
        # with out-degree d = max degree (and d >= 2 per the lemma statement).
        d = max(graph.max_degree(), 2)
        layer_of = {v: float(rng.randint(1, 3)) for v in graph.vertices}
        assignment = PartialLayerAssignment(graph, layer_of, num_layers=3, out_degree=d)
        total_in = sum(num_paths_in(assignment).values())
        total_out = sum(num_paths_out(assignment).values())
        assert total_in == total_out
        assert total_in <= lemma_2_4_upper_bound(assignment)
