"""Tests for Lemma 3.14 (iteration) and Lemma 3.15 (complete layering)."""

from __future__ import annotations

import pytest

from repro.analysis.validators import validate_hpartition_out_degree, validate_layer_decay
from repro.core.full_assignment import complete_layer_assignment, iterated_partial_assignment
from repro.errors import ParameterError
from repro.graph import generators
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


class TestIteratedPartialAssignment:
    def test_produces_complete_assignment(self, union_forest_graph):
        run = iterated_partial_assignment(union_forest_graph, k=6, budget=144)
        assert run.is_complete()
        partition = run.to_hpartition()
        assert partition.num_layers >= 1

    def test_layers_respect_out_degree_bound(self, union_forest_graph):
        run = iterated_partial_assignment(union_forest_graph, k=6, budget=144)
        partition = run.to_hpartition()
        # Claim 3.12 applied per phase: out-degree ≤ (s+1)·k throughout.
        validate_hpartition_out_degree(partition, run.out_degree_bound).raise_if_failed()

    def test_phase_log_records_progress(self, union_forest_graph):
        run = iterated_partial_assignment(union_forest_graph, k=6, budget=144)
        assert run.phases == len(run.phase_log)
        assigned_total = sum(entry["assigned"] for entry in run.phase_log)
        assert assigned_total <= union_forest_graph.num_vertices

    def test_incomplete_raises_on_hpartition_conversion(self, union_forest_graph):
        run = iterated_partial_assignment(union_forest_graph, k=6, budget=144)
        # Manually poke a hole to exercise the error path.
        from repro.core.layering import UNASSIGNED

        run.layer_of[0] = UNASSIGNED
        with pytest.raises(ParameterError):
            run.to_hpartition()


class TestCompleteLayerAssignment:
    def test_rejects_bad_k(self, small_forest):
        with pytest.raises(ParameterError):
            complete_layer_assignment(small_forest, k=0)

    def test_complete_on_forest(self, small_forest):
        run = complete_layer_assignment(small_forest, k=2)
        assert run.is_complete()
        partition = run.to_hpartition()
        partition.validate_out_degree(run.out_degree_bound)

    def test_out_degree_bound_scales_with_k(self, union_forest_graph):
        run = complete_layer_assignment(union_forest_graph, k=6)
        partition = run.to_hpartition()
        max_out = partition.max_out_degree()
        assert max_out <= run.out_degree_bound
        # The final guarantee of Lemma 3.15: O(k · log log n); with our
        # constants the measured value stays within a small multiple of k.
        assert max_out <= 8 * 6

    def test_layer_decay(self, union_forest_graph):
        run = complete_layer_assignment(union_forest_graph, k=6)
        partition = run.to_hpartition()
        report = validate_layer_decay(partition, ratio=0.5, slack=2.0)
        assert report.passed, report.details

    def test_deep_tree_is_layered_without_log_n_rounds(self):
        graph = generators.complete_ary_tree(4, 4096)
        cluster = MPCCluster(MPCConfig.for_graph(graph))
        run = complete_layer_assignment(graph, k=3, cluster=cluster)
        assert run.is_complete()
        partition = run.to_hpartition()
        partition.validate_out_degree(run.out_degree_bound)
        # The tree has depth ~6 (so LOCAL peeling needs ~6 rounds); the layer
        # assignment must not grow its round count with the depth.
        assert cluster.stats.num_rounds <= 30

    def test_power_law_hubs_receive_high_layers(self, power_law_graph):
        run = complete_layer_assignment(power_law_graph, k=10)
        partition = run.to_hpartition()
        hub = max(power_law_graph.vertices, key=power_law_graph.degree)
        # The highest-degree hub cannot sit in the bottom layer unless its
        # degree is tiny; with planted hubs it must be layered above average.
        assert partition.layer_of[hub] >= 1
        partition.validate_out_degree(run.out_degree_bound)

    def test_rounds_recorded_when_cluster_given(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        run = complete_layer_assignment(union_forest_graph, k=6, cluster=cluster)
        assert run.rounds_charged == cluster.stats.num_rounds
        assert run.rounds_charged >= 1

    def test_budget_overrides_respected(self, union_forest_graph):
        run = complete_layer_assignment(
            union_forest_graph, k=6, initial_budget=64, budget_cap=64
        )
        assert run.is_complete()
