"""Tests for rooted tree views with valid mappings (Definitions 2.3–2.7)."""

from __future__ import annotations

import math

import pytest

from repro.core.tree_view import TreeView, TreeViewError
from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def square() -> Graph:
    """A 4-cycle 0-1-2-3-0."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


def two_level_view(square: Graph) -> TreeView:
    """A tree view of vertex 0 in the 4-cycle exploring both neighbors and their neighbors."""
    # nodes: 0->v0, 1->v1, 2->v3, 3->v2 (child of v1), 4->v2 (child of v3)
    return TreeView(vertex_of=[0, 1, 3, 2, 2], parent=[-1, 0, 0, 1, 2])


class TestConstruction:
    def test_single_node(self):
        view = TreeView.single_node(7)
        assert view.num_nodes == 1
        assert view.map(0) == 7
        assert view.is_leaf(0)

    def test_star_of_neighbors(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        assert view.num_nodes == small_star.num_vertices
        assert sorted(view.child_vertices(0)) == list(range(1, small_star.num_vertices))
        assert view.is_valid_mapping(small_star)

    def test_rejects_inconsistent_arrays(self):
        with pytest.raises(TreeViewError):
            TreeView(vertex_of=[0, 1], parent=[-1])
        with pytest.raises(TreeViewError):
            TreeView(vertex_of=[], parent=[])
        with pytest.raises(TreeViewError):
            TreeView(vertex_of=[0, 1], parent=[0, -1])
        with pytest.raises(TreeViewError):
            TreeView(vertex_of=[0, 1], parent=[-1, 5])

    def test_depths_and_bfs(self, square):
        view = two_level_view(square)
        assert view.depths() == [0, 1, 1, 2, 2]
        assert view.depth(4) == 2
        assert view.bfs_order()[0] == 0
        assert view.subtree_sizes()[0] == 5
        assert view.path_to_root(3) == [3, 1, 0]

    def test_leaves_at_depth(self, square):
        view = two_level_view(square)
        assert sorted(view.leaves_at_depth(2)) == [3, 4]
        assert view.leaves_at_depth(1) == []


class TestValidMapping:
    def test_same_vertex_may_repeat_on_different_branches(self, square):
        view = two_level_view(square)
        assert view.is_valid_mapping(square)

    def test_non_edge_detected(self, square):
        bad = TreeView(vertex_of=[0, 2], parent=[-1, 0])  # 0-2 is not an edge
        assert not bad.is_valid_mapping(square)
        assert bad.mapping_violations(square)

    def test_duplicate_siblings_detected(self, square):
        bad = TreeView(vertex_of=[0, 1, 1], parent=[-1, 0, 0])
        assert not bad.is_valid_mapping(square)


class TestMissingNeighbors:
    def test_root_with_all_children_has_none(self, small_star):
        view = TreeView.star_of_neighbors(small_star, 0)
        assert view.missing_neighbors(small_star, 0) == set()
        # Leaves of the view have their own graph neighbors uncovered.
        assert view.missing_neighbors(small_star, 1) == {0}

    def test_partial_children(self, square):
        view = TreeView(vertex_of=[0, 1], parent=[-1, 0])
        assert view.missing_neighbors(square, 0) == {3}
        assert view.missing_count(square, 1) == 2  # neighbors 0 and 2 uncovered


class TestStrictMonotonicReachability:
    def test_increasing_layers(self, square):
        view = two_level_view(square)
        layer_of = {0: 3.0, 1: 2.0, 2: 1.0, 3: 2.0}
        # node 3 maps to v2 (layer 1) with path v2 < v1 < v0 => increasing toward root.
        assert view.is_strictly_monotonically_reachable(3, layer_of)
        # node 1 maps to v1 (layer 2) < root layer 3.
        assert view.is_strictly_monotonically_reachable(1, layer_of)
        # The root is always reachable (single-element path).
        assert view.is_strictly_monotonically_reachable(0, layer_of)

    def test_non_increasing_rejected(self, square):
        view = two_level_view(square)
        layer_of = {0: 1.0, 1: 2.0, 2: 1.0, 3: 2.0}
        assert not view.is_strictly_monotonically_reachable(1, layer_of)

    def test_infinite_layers(self, square):
        view = two_level_view(square)
        layer_of = {0: math.inf, 1: 2.0, 2: 1.0, 3: 2.0}
        # A finite layer below the root's ∞ still counts as strictly smaller.
        assert view.is_strictly_monotonically_reachable(1, layer_of)
        layer_of = {0: 2.0, 1: math.inf, 2: 1.0, 3: 2.0}
        assert not view.is_strictly_monotonically_reachable(1, layer_of)

    def test_bulk_matches_single(self, square):
        view = two_level_view(square)
        layer_of = {0: 3.0, 1: 2.0, 2: 1.0, 3: 1.0}
        bulk = set(view.strictly_monotonically_reachable_nodes(layer_of))
        singles = {
            node
            for node in view.nodes()
            if view.is_strictly_monotonically_reachable(node, layer_of)
        }
        assert bulk == singles


class TestRestrictAndAttach:
    def test_restricted_to_subset(self, square):
        view = two_level_view(square)
        pruned = view.restricted_to([0, 1, 3])
        assert pruned.num_nodes == 3
        assert pruned.map(0) == 0
        assert pruned.is_valid_mapping(square)

    def test_restriction_must_keep_root_and_parents(self, square):
        view = two_level_view(square)
        with pytest.raises(TreeViewError):
            view.restricted_to([1, 3])
        with pytest.raises(TreeViewError):
            view.restricted_to([0, 3])

    def test_attach_replaces_leaf(self, square):
        base = TreeView(vertex_of=[0, 1], parent=[-1, 0])
        subtree = TreeView(vertex_of=[1, 2, 0], parent=[-1, 0, 0])
        attached = base.attach({1: subtree})
        assert attached.num_nodes == 4
        assert attached.is_valid_mapping(square)
        # The leaf's replacement root keeps mapping to vertex 1.
        assert attached.map(1) == 1
        assert sorted(attached.child_vertices(1)) == [0, 2]

    def test_attach_requires_leaf(self, square):
        view = two_level_view(square)
        subtree = TreeView.single_node(1)
        with pytest.raises(TreeViewError):
            view.attach({1: subtree})  # node 1 has a child

    def test_attach_requires_matching_root_vertex(self, square):
        base = TreeView(vertex_of=[0, 1], parent=[-1, 0])
        subtree = TreeView.single_node(2)
        with pytest.raises(TreeViewError):
            base.attach({1: subtree})

    def test_copy_is_independent(self, square):
        view = two_level_view(square)
        clone = view.copy()
        clone.vertex_of[0] = 99
        assert view.vertex_of[0] == 0

    def test_word_size(self, square):
        view = two_level_view(square)
        assert view.word_size() == 2 * view.num_nodes
