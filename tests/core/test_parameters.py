"""Tests for parameter selection (Lemma 3.13's parameter relations)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import Parameters, choose_parameters, log2_ceil, loglog
from repro.errors import ParameterError


class TestParameters:
    def test_layer_out_degree_formula(self):
        params = Parameters(k=5, budget=64, steps=4, num_layers=3)
        assert params.layer_out_degree == (4 + 1) * 5

    def test_sqrt_budget(self):
        assert Parameters(k=2, budget=100, steps=3, num_layers=2).sqrt_budget == 10
        assert Parameters(k=2, budget=99, steps=3, num_layers=2).sqrt_budget == 9

    def test_rejects_invalid_values(self):
        with pytest.raises(ParameterError):
            Parameters(k=0, budget=64, steps=3, num_layers=2)
        with pytest.raises(ParameterError):
            Parameters(k=2, budget=2, steps=3, num_layers=2)
        with pytest.raises(ParameterError):
            Parameters(k=2, budget=64, steps=0, num_layers=2)
        with pytest.raises(ParameterError):
            Parameters(k=2, budget=64, steps=3, num_layers=0)

    def test_rejects_steps_not_exceeding_log_layers(self):
        # Lemma 3.7 requires s > log2(L): with L=8 we need s >= 4.
        with pytest.raises(ParameterError):
            Parameters(k=2, budget=256, steps=3, num_layers=8)
        Parameters(k=2, budget=256, steps=4, num_layers=8)


class TestHelpers:
    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(5) == 3

    def test_loglog_clamped(self):
        assert loglog(2) == 1.0
        assert loglog(2**16) == pytest.approx(4.0)


class TestChooseParameters:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            choose_parameters(0, 1)
        with pytest.raises(ParameterError):
            choose_parameters(10, -1)
        with pytest.raises(ParameterError):
            choose_parameters(10, 1, delta=0.0)

    def test_k_scales_with_arboricity(self):
        low = choose_parameters(1024, 2)
        high = choose_parameters(1024, 16)
        assert high.k > low.k
        assert low.k >= 2 * 2
        assert high.k >= 2 * 16

    def test_budget_cap_respected(self):
        params = choose_parameters(1024, 4, budget_cap=128)
        assert params.budget <= 128

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=100_000),
        st.integers(min_value=0, max_value=64),
        st.floats(min_value=0.2, max_value=0.9),
    )
    def test_relations_always_hold(self, n, arboricity, delta):
        params = choose_parameters(n, arboricity, delta=delta)
        # The structural relations of Lemma 3.13, with scaled constants.
        assert params.k >= max(arboricity, 1)
        assert params.steps > math.log2(params.num_layers) - 1e-9
        assert params.budget >= 16
        assert params.layer_out_degree == (params.steps + 1) * params.k
