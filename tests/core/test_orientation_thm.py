"""Tests for the Theorem 1.1 orientation pipeline."""

from __future__ import annotations

import pytest

from repro.analysis.validators import (
    validate_orientation_quality,
    validate_round_complexity,
)
from repro.core.orientation import orient, orientation_outdegree_bound
from repro.core.partitioning import EdgePartition
from repro.errors import GraphError, ParameterError
from repro.graph import generators
from repro.graph.arboricity import arboricity_bounds
from repro.graph.graph import Graph
from repro.graph.orientation import Orientation
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


class TestBasicCorrectness:
    def test_empty_graph(self):
        run = orient(Graph(0))
        assert run.max_outdegree == 0
        assert run.rounds == 0

    def test_covers_every_edge(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert set(run.orientation.direction.keys()) == set(union_forest_graph.edges)

    def test_rejects_bad_k(self, union_forest_graph):
        with pytest.raises(ParameterError):
            orient(union_forest_graph, k=0)

    def test_deterministic_given_seed(self, union_forest_graph):
        a = orient(union_forest_graph, seed=5)
        b = orient(union_forest_graph, seed=5)
        assert a.orientation.direction == b.orientation.direction


class TestTheorem11Quality:
    def test_forest_outdegree(self, small_forest):
        run = orient(small_forest, seed=0)
        bounds = arboricity_bounds(small_forest)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, small_forest.num_vertices
        )
        assert report.passed

    def test_union_forest_outdegree(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.max_outdegree <= orientation_outdegree_bound(4, union_forest_graph.num_vertices)

    def test_star_outdegree_is_one(self, small_star):
        run = orient(small_star, seed=0)
        assert run.max_outdegree <= 2
        # The Δ-oblivious guarantee: the hub's degree is irrelevant.
        assert small_star.max_degree() == small_star.num_vertices - 1

    def test_power_law_beats_max_degree(self, power_law_graph):
        run = orient(power_law_graph, seed=0)
        assert run.max_outdegree < power_law_graph.max_degree() / 4
        bounds = arboricity_bounds(power_law_graph, exact_density=False)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, power_law_graph.num_vertices
        )
        assert report.passed

    def test_outdegree_ratio_reported(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.outdegree_to_arboricity_ratio() == pytest.approx(
            run.max_outdegree / run.arboricity_proxy
        )


class TestRoundsAndBranches:
    def test_round_complexity_poly_loglog(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        report = validate_round_complexity(run.rounds, union_forest_graph.num_vertices)
        assert report.passed

    def test_small_lambda_uses_direct_branch(self, small_forest):
        run = orient(small_forest, seed=0)
        assert not run.used_edge_partitioning
        assert run.num_parts == 1
        assert run.hpartition is not None

    def test_large_lambda_uses_edge_partitioning(self, dense_community_graph):
        run = orient(dense_community_graph, seed=0)
        assert run.used_edge_partitioning
        assert run.num_parts > 1
        # The merged orientation still covers all edges and respects the bound.
        assert set(run.orientation.direction.keys()) == set(dense_community_graph.edges)
        bounds = arboricity_bounds(dense_community_graph, exact_density=False)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, dense_community_graph.num_vertices, constant=12.0
        )
        assert report.passed

    def test_force_edge_partitioning_override(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0, force_edge_partitioning=True)
        assert run.used_edge_partitioning
        assert set(run.orientation.direction.keys()) == set(union_forest_graph.edges)

    def test_external_cluster_accumulates_rounds(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        run = orient(union_forest_graph, seed=0, cluster=cluster)
        assert run.rounds == cluster.stats.num_rounds
        assert run.cluster is cluster

    def test_orientation_from_layering_is_acyclic(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.orientation.is_acyclic()


class TestMergedCoverageInvariant:
    """Regression tests for the merged-orientation fallback in ``orient``.

    The seed code tried to "repair" a merge that missed edges by re-wrapping
    the incomplete direction map in ``Orientation(graph, ...)``, which can
    only raise ``InvalidOrientationError`` — a confusing crash instead of a
    diagnosis.  The replacement checks the Lemma 2.1 invariant (every input
    edge lands in exactly one oriented part) and fails with a clear error.
    """

    def test_zero_edge_parts_are_skipped_and_coverage_holds(self):
        # Path on 4 vertices has 3 edges; forcing the partition branch with a
        # large explicit k yields ceil(k / log2 n) = 4 parts, so at least one
        # part must be empty and the zero-edge-part path is exercised.
        graph = generators.path(4)
        run = orient(graph, k=8, seed=1, force_edge_partitioning=True)
        assert run.num_parts > graph.num_edges  # pigeonhole: some part is empty
        assert set(run.orientation.direction.keys()) == set(graph.edges)

    def test_missing_edges_raise_clear_invariant_error(self, monkeypatch):
        """If the edge partition drops an edge, orient must report the broken
        Lemma 2.1 invariant (on the seed this surfaced as an
        InvalidOrientationError from the repair attempt instead)."""
        import repro.core.orientation as orientation_module

        graph = generators.path(4)

        def lossy_partition(g, arboricity_bound, rng=None, seed=None, num_parts=None):
            return EdgePartition(parts=[Graph(g.num_vertices, g.edges[:-1])])

        monkeypatch.setattr(orientation_module, "random_edge_partition", lossy_partition)
        with pytest.raises(GraphError, match="does not cover"):
            orient(graph, k=8, seed=1, force_edge_partitioning=True)

    def test_all_parts_empty_with_nonempty_graph_raises(self):
        from repro.core.orientation import _check_merged_covers

        graph = generators.path(3)
        with pytest.raises(GraphError, match="no oriented parts"):
            _check_merged_covers(graph, None)

    def test_empty_graph_yields_empty_orientation(self):
        from repro.core.orientation import _check_merged_covers

        graph = Graph(3)
        merged = _check_merged_covers(graph, None)
        assert isinstance(merged, Orientation)
        assert merged.max_outdegree() == 0
