"""Tests for the Theorem 1.1 orientation pipeline."""

from __future__ import annotations

import pytest

from repro.analysis.validators import (
    validate_orientation_quality,
    validate_round_complexity,
)
from repro.core.orientation import orient, orientation_outdegree_bound
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.arboricity import arboricity_bounds
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


class TestBasicCorrectness:
    def test_empty_graph(self):
        run = orient(Graph(0))
        assert run.max_outdegree == 0
        assert run.rounds == 0

    def test_covers_every_edge(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert set(run.orientation.direction.keys()) == set(union_forest_graph.edges)

    def test_rejects_bad_k(self, union_forest_graph):
        with pytest.raises(ParameterError):
            orient(union_forest_graph, k=0)

    def test_deterministic_given_seed(self, union_forest_graph):
        a = orient(union_forest_graph, seed=5)
        b = orient(union_forest_graph, seed=5)
        assert a.orientation.direction == b.orientation.direction


class TestTheorem11Quality:
    def test_forest_outdegree(self, small_forest):
        run = orient(small_forest, seed=0)
        bounds = arboricity_bounds(small_forest)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, small_forest.num_vertices
        )
        assert report.passed

    def test_union_forest_outdegree(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.max_outdegree <= orientation_outdegree_bound(4, union_forest_graph.num_vertices)

    def test_star_outdegree_is_one(self, small_star):
        run = orient(small_star, seed=0)
        assert run.max_outdegree <= 2
        # The Δ-oblivious guarantee: the hub's degree is irrelevant.
        assert small_star.max_degree() == small_star.num_vertices - 1

    def test_power_law_beats_max_degree(self, power_law_graph):
        run = orient(power_law_graph, seed=0)
        assert run.max_outdegree < power_law_graph.max_degree() / 4
        bounds = arboricity_bounds(power_law_graph, exact_density=False)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, power_law_graph.num_vertices
        )
        assert report.passed

    def test_outdegree_ratio_reported(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.outdegree_to_arboricity_ratio() == pytest.approx(
            run.max_outdegree / run.arboricity_proxy
        )


class TestRoundsAndBranches:
    def test_round_complexity_poly_loglog(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        report = validate_round_complexity(run.rounds, union_forest_graph.num_vertices)
        assert report.passed

    def test_small_lambda_uses_direct_branch(self, small_forest):
        run = orient(small_forest, seed=0)
        assert not run.used_edge_partitioning
        assert run.num_parts == 1
        assert run.hpartition is not None

    def test_large_lambda_uses_edge_partitioning(self, dense_community_graph):
        run = orient(dense_community_graph, seed=0)
        assert run.used_edge_partitioning
        assert run.num_parts > 1
        # The merged orientation still covers all edges and respects the bound.
        assert set(run.orientation.direction.keys()) == set(dense_community_graph.edges)
        bounds = arboricity_bounds(dense_community_graph, exact_density=False)
        report = validate_orientation_quality(
            run.orientation, bounds.upper, dense_community_graph.num_vertices, constant=12.0
        )
        assert report.passed

    def test_force_edge_partitioning_override(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0, force_edge_partitioning=True)
        assert run.used_edge_partitioning
        assert set(run.orientation.direction.keys()) == set(union_forest_graph.edges)

    def test_external_cluster_accumulates_rounds(self, union_forest_graph):
        cluster = MPCCluster(MPCConfig.for_graph(union_forest_graph))
        run = orient(union_forest_graph, seed=0, cluster=cluster)
        assert run.rounds == cluster.stats.num_rounds
        assert run.cluster is cluster

    def test_orientation_from_layering_is_acyclic(self, union_forest_graph):
        run = orient(union_forest_graph, seed=0)
        assert run.orientation.is_acyclic()
