"""A claim-by-claim validation matrix across workload families.

For every (claim, workload) pair in the matrix, run the relevant pipeline and
apply the corresponding validator from :mod:`repro.analysis.validators`.  This
mirrors what the benchmark suite measures, at test-friendly sizes, so the
claims stay verified on every test run — not only when benchmarks are invoked.
"""

from __future__ import annotations

import pytest

from repro import color, orient
from repro.analysis.stats import growth_exponent
from repro.analysis.validators import (
    validate_coloring_quality,
    validate_hpartition_out_degree,
    validate_layer_decay,
    validate_orientation_quality,
    validate_partial_assignment,
    validate_round_complexity,
    validate_tree_budget,
    validate_tree_mappings,
)
from repro.baselines.be_mpc import barenboim_elkin_in_mpc
from repro.core.exponentiate import exponentiate_and_local_prune
from repro.core.full_assignment import complete_layer_assignment
from repro.core.parameters import Parameters, choose_parameters
from repro.core.partial_assignment import partial_layer_assignment
from repro.graph import generators
from repro.graph.arboricity import arboricity_upper_bound

WORKLOADS = {
    "forest": generators.random_forest(300, num_trees=3, seed=31),
    "union_forests": generators.union_of_random_forests(300, arboricity=3, seed=32),
    "power_law": generators.chung_lu_power_law(300, exponent=2.4, average_degree=6.0, seed=33),
    "ary_tree": generators.complete_ary_tree(5, 300),
    "grid": generators.grid_2d(17, 17),
}


@pytest.fixture(params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def workload(request):
    return request.param, WORKLOADS[request.param]


class TestTheoremClaims:
    def test_theorem_1_1(self, workload):
        name, graph = workload
        run = orient(graph, seed=7)
        bound = arboricity_upper_bound(graph)
        validate_orientation_quality(run.orientation, bound, graph.num_vertices).raise_if_failed()
        validate_round_complexity(run.rounds, graph.num_vertices).raise_if_failed()

    def test_theorem_1_2(self, workload):
        name, graph = workload
        run = color(graph, seed=7)
        bound = arboricity_upper_bound(graph)
        validate_coloring_quality(run.coloring, bound, graph.num_vertices).raise_if_failed()
        validate_round_complexity(run.rounds, graph.num_vertices).raise_if_failed()


class TestLemmaClaims:
    def test_lemma_3_15_layering(self, workload):
        name, graph = workload
        k = max(2, 2 * arboricity_upper_bound(graph))
        run = complete_layer_assignment(graph, k=k)
        partition = run.to_hpartition()
        validate_hpartition_out_degree(partition, run.out_degree_bound).raise_if_failed()
        validate_layer_decay(partition, slack=2.0).raise_if_failed()

    def test_claims_3_3_3_4_3_12(self, workload):
        name, graph = workload
        bound = max(2, arboricity_upper_bound(graph))
        params = choose_parameters(graph.num_vertices, bound)
        expo = exponentiate_and_local_prune(graph, params)
        validate_tree_mappings(graph, expo.trees).raise_if_failed()
        validate_tree_budget(expo.trees, params).raise_if_failed()
        result = partial_layer_assignment(graph, params)
        validate_partial_assignment(result.assignment).raise_if_failed()


class TestRoundShape:
    def test_round_growth_flat_versus_local_on_deep_trees(self):
        """The E3 shape at test scale: ours flat, LOCAL grows with depth."""
        # Start the sweep past the sizes where Stage-1 peeling alone finishes
        # the job, so the "ours stays flat" comparison is about the pipeline.
        sizes = [1024, 8192, 65536]
        ours_rounds = []
        local_rounds = []
        for n in sizes:
            graph = generators.complete_ary_tree(4, n)
            ours_rounds.append(orient(graph, k=3, seed=0).rounds)
            local_rounds.append(barenboim_elkin_in_mpc(graph, arboricity=1).rounds)
        ours_exponent = growth_exponent([float(s) for s in sizes], [float(r) for r in ours_rounds])
        local_exponent = growth_exponent([float(s) for s in sizes], [float(r) for r in local_rounds])
        assert local_rounds[-1] > local_rounds[0]
        assert local_exponent > ours_exponent
        assert ours_rounds[-1] <= ours_rounds[0] + 8


class TestParameterSmoke:
    @pytest.mark.parametrize("k,budget,steps,layers", [(2, 64, 3, 2), (4, 100, 3, 3), (8, 256, 4, 4)])
    def test_algorithm_4_respects_declared_bound(self, k, budget, steps, layers):
        graph = WORKLOADS["power_law"]
        params = Parameters(k=k, budget=budget, steps=steps, num_layers=layers)
        result = partial_layer_assignment(graph, params)
        result.assignment.validate()
        assert result.assignment.out_degree == (steps + 1) * k
