"""End-to-end integration tests across the whole pipeline.

These tests exercise the same code paths as the benchmark suite, on smaller
inputs, so that a green test run implies the benchmarks can execute.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import color, orient
from repro.analysis.validators import (
    validate_coloring_quality,
    validate_global_memory,
    validate_layer_decay,
    validate_local_memory,
    validate_orientation_quality,
    validate_round_complexity,
)
from repro.baselines.be_mpc import barenboim_elkin_in_mpc
from repro.baselines.forest import forest_orient_and_color
from repro.core.full_assignment import complete_layer_assignment
from repro.graph import generators
from repro.graph.arboricity import arboricity_bounds, degeneracy
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from tests.conftest import forests, graphs


FAMILIES = [
    ("forest", {}),
    ("union_forests", {"arboricity": 3}),
    ("power_law", {"average_degree": 5.0}),
    ("gnp", {}),
    ("ary_tree", {"branching": 5}),
]


class TestOrientAndColorAcrossFamilies:
    @pytest.mark.parametrize("family,params", FAMILIES)
    def test_orientation_quality_and_rounds(self, family, params):
        graph = generators.generate(family, 300, seed=11, **params)
        bounds = arboricity_bounds(graph, exact_density=False)
        run = orient(graph, seed=1)
        assert set(run.orientation.direction.keys()) == set(graph.edges)
        validate_orientation_quality(
            run.orientation, bounds.upper, graph.num_vertices
        ).raise_if_failed()
        validate_round_complexity(run.rounds, graph.num_vertices).raise_if_failed()

    @pytest.mark.parametrize("family,params", FAMILIES)
    def test_coloring_quality(self, family, params):
        graph = generators.generate(family, 300, seed=13, **params)
        bounds = arboricity_bounds(graph, exact_density=False)
        run = color(graph, seed=2)
        run.coloring.validate_proper()
        validate_coloring_quality(
            run.coloring, bounds.upper, graph.num_vertices
        ).raise_if_failed()


class TestAgreementWithBaselines:
    def test_ours_within_loglog_factor_of_local_baseline(self, union_forest_graph):
        ours = orient(union_forest_graph, seed=0)
        baseline = barenboim_elkin_in_mpc(union_forest_graph, arboricity=3)
        # The baseline achieves (2+eps)λ; ours is allowed an extra O(log log n).
        assert ours.max_outdegree <= 4 * max(baseline.max_outdegree, 1)

    def test_general_pipeline_handles_forests_like_specialist(self, small_forest):
        general = orient(small_forest, seed=0)
        specialist = forest_orient_and_color(small_forest)
        assert specialist.max_outdegree <= 2
        assert general.max_outdegree <= 8  # O(λ log log n) with λ = 1


class TestMemoryProfile:
    def test_memory_claims_on_mid_size_graph(self):
        graph = generators.union_of_random_forests(1024, arboricity=4, seed=21)
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=0.5))
        run = complete_layer_assignment(graph, k=8, cluster=cluster)
        assert run.is_complete()
        budget = 4 * int(graph.num_vertices**0.5)
        validate_local_memory(
            cluster.stats, graph.num_vertices, budget=budget, delta=0.5
        ).raise_if_failed()
        validate_global_memory(
            cluster.stats, graph.num_vertices, graph.num_edges, budget=budget
        ).raise_if_failed()

    def test_layer_decay_on_mid_size_graph(self):
        graph = generators.union_of_random_forests(1024, arboricity=4, seed=23)
        run = complete_layer_assignment(graph, k=8)
        validate_layer_decay(run.to_hpartition(), slack=2.0).raise_if_failed()


class TestPropertyBasedEndToEnd:
    @settings(max_examples=10, deadline=None)
    @given(graphs(max_vertices=24), st.integers(min_value=0, max_value=10**6))
    def test_orient_always_valid_on_random_graphs(self, graph, seed):
        if graph.num_vertices == 0:
            return
        run = orient(graph, seed=seed)
        assert set(run.orientation.direction.keys()) == set(graph.edges)
        # The layering-induced orientation is acyclic whenever produced directly.
        if run.hpartition is not None:
            assert run.orientation.is_acyclic()

    @settings(max_examples=10, deadline=None)
    @given(graphs(max_vertices=20), st.integers(min_value=0, max_value=10**6))
    def test_color_always_proper_on_random_graphs(self, graph, seed):
        if graph.num_vertices == 0:
            return
        run = color(graph, seed=seed)
        run.coloring.validate_proper()

    @settings(max_examples=10, deadline=None)
    @given(forests(max_vertices=40), st.integers(min_value=0, max_value=10**6))
    def test_forests_get_constant_outdegree_and_palette(self, forest, seed):
        run = orient(forest, seed=seed)
        assert run.max_outdegree <= 8
        coloring_run = color(forest, seed=seed)
        coloring_run.coloring.validate_proper()
        assert coloring_run.num_colors <= 24

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=60))
    def test_stars_of_any_size(self, leaves):
        graph = generators.star(leaves)
        run = orient(graph, seed=0)
        assert run.max_outdegree <= 2
        coloring_run = color(graph, seed=0)
        assert coloring_run.num_colors <= 6
        coloring_run.coloring.validate_proper()
