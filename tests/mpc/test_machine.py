"""Tests for per-machine accounting."""

from __future__ import annotations

import pytest

from repro.errors import CommunicationLimitExceeded, MemoryLimitExceeded
from repro.mpc.machine import Machine


class TestStorage:
    def test_store_and_release(self):
        machine = Machine(machine_id=0, capacity_words=100)
        machine.store(40)
        machine.store(20, tag="trees")
        assert machine.stored_words == 60
        assert machine.peak_stored_words == 60
        machine.release(30)
        assert machine.stored_words == 30
        assert machine.peak_stored_words == 60

    def test_store_over_capacity_raises(self):
        machine = Machine(machine_id=3, capacity_words=10)
        with pytest.raises(MemoryLimitExceeded) as info:
            machine.store(11)
        assert info.value.machine_id == 3

    def test_store_over_capacity_unenforced(self):
        machine = Machine(machine_id=0, capacity_words=10)
        machine.store(50, enforce=False)
        assert machine.stored_words == 50

    def test_release_tag(self):
        machine = Machine(machine_id=0, capacity_words=100)
        machine.store(30, tag="a")
        machine.store(20, tag="b")
        machine.release_tag("a")
        assert machine.stored_words == 20

    def test_negative_words_rejected(self):
        machine = Machine(machine_id=0, capacity_words=100)
        with pytest.raises(ValueError):
            machine.store(-1)
        with pytest.raises(ValueError):
            machine.release(-1)

    def test_utilisation(self):
        machine = Machine(machine_id=0, capacity_words=100)
        machine.store(25)
        assert machine.utilisation == pytest.approx(0.25)


class TestCommunication:
    def test_round_counters_reset(self):
        machine = Machine(machine_id=0, capacity_words=100)
        machine.account_send(60)
        machine.account_receive(70)
        machine.begin_round()
        assert machine.round_sent_words == 0
        assert machine.round_received_words == 0

    def test_send_limit(self):
        machine = Machine(machine_id=1, capacity_words=10)
        with pytest.raises(CommunicationLimitExceeded) as info:
            machine.account_send(11)
        assert info.value.direction == "sent"

    def test_receive_limit_unenforced(self):
        machine = Machine(machine_id=1, capacity_words=10)
        machine.account_receive(100, enforce=False)
        assert machine.round_received_words == 100
