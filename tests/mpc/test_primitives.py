"""Tests for the standard MPC primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.mpc.primitives import (
    AGGREGATE_ROUNDS,
    BROADCAST_ROUNDS,
    GATHER_ROUNDS,
    PREFIX_SUM_ROUNDS,
    SORT_ROUNDS,
    aggregate_by_key,
    broadcast,
    count_by_key,
    gather_bundles,
    prefix_sums,
    sort_by_key,
)


@pytest.fixture
def cluster() -> MPCCluster:
    return MPCCluster(MPCConfig(num_vertices=512, num_edges=1024, delta=0.5))


class TestSort:
    def test_sorts_by_key(self, cluster):
        items = [(3, "c"), (1, "a"), (2, "b")]
        result = sort_by_key(cluster, items)
        assert [k for k, _ in result] == [1, 2, 3]
        assert cluster.stats.num_rounds == SORT_ROUNDS


class TestAggregate:
    def test_combines_values(self, cluster):
        items = [(1, 2), (1, 3), (2, 10)]
        result = aggregate_by_key(cluster, items, combine=lambda a, b: a + b)
        assert result == {1: 5, 2: 10}
        assert cluster.stats.num_rounds == AGGREGATE_ROUNDS

    def test_min_combine(self, cluster):
        result = aggregate_by_key(cluster, [(7, 4), (7, 1), (9, 2)], combine=min)
        assert result == {7: 1, 9: 2}

    def test_count_by_key(self, cluster):
        result = count_by_key(cluster, [1, 1, 2, 3, 3, 3])
        assert result == {1: 2, 2: 1, 3: 3}


class TestBroadcastAndPrefix:
    def test_broadcast_charges_rounds(self, cluster):
        broadcast(cluster, payload_words=2, destinations=list(range(50)))
        assert cluster.stats.num_rounds >= BROADCAST_ROUNDS

    def test_broadcast_empty_destinations(self, cluster):
        broadcast(cluster, payload_words=2, destinations=[])
        assert cluster.stats.num_rounds == BROADCAST_ROUNDS

    def test_broadcast_rejects_negative_payload(self, cluster):
        with pytest.raises(SimulationError):
            broadcast(cluster, payload_words=-1, destinations=[1])

    def test_prefix_sums(self, cluster):
        assert prefix_sums(cluster, [3, 1, 4, 1]) == [0, 3, 4, 8]
        assert cluster.stats.num_rounds == PREFIX_SUM_ROUNDS


class TestGather:
    def test_gather_bundles_delivers_volume(self, cluster):
        bundles = {0: 3, 1: 2, 2: 1}
        interest = {5: [0, 1], 6: [2]}
        gather_bundles(cluster, bundles, interest)
        assert cluster.stats.num_rounds == GATHER_ROUNDS + 1
        assert cluster.stats.total_words_sent == 3 + 2 + 1

    def test_gather_with_storage(self, cluster):
        gather_bundles(cluster, {0: 4}, {1: [0]}, store_tag="bundle")
        assert cluster.global_memory_in_use() == 4
