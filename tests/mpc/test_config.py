"""Tests for MPCConfig."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.graph import generators
from repro.mpc.config import MPCConfig


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ParameterError):
            MPCConfig(num_vertices=0, num_edges=0)
        with pytest.raises(ParameterError):
            MPCConfig(num_vertices=10, num_edges=-1)
        with pytest.raises(ParameterError):
            MPCConfig(num_vertices=10, num_edges=0, delta=0.0)
        with pytest.raises(ParameterError):
            MPCConfig(num_vertices=10, num_edges=0, memory_constant=0.0)


class TestDerivedQuantities:
    def test_strongly_sublinear_flag(self):
        assert MPCConfig(num_vertices=100, num_edges=10, delta=0.5).is_strongly_sublinear
        assert not MPCConfig(num_vertices=100, num_edges=10, delta=1.0).is_strongly_sublinear

    def test_words_per_machine_scales_with_delta(self):
        small = MPCConfig(num_vertices=10_000, num_edges=0, delta=0.25)
        large = MPCConfig(num_vertices=10_000, num_edges=0, delta=0.75)
        assert small.words_per_machine < large.words_per_machine

    def test_words_per_machine_sublinear(self):
        config = MPCConfig(num_vertices=10_000, num_edges=40_000, delta=0.5)
        assert config.words_per_machine < config.num_vertices

    def test_global_memory_covers_input(self):
        config = MPCConfig(num_vertices=1000, num_edges=5000, delta=0.5)
        assert config.global_memory_words() >= config.num_edges + config.num_vertices

    def test_num_machines_times_capacity_covers_budget(self):
        config = MPCConfig(num_vertices=1000, num_edges=5000, delta=0.5)
        assert config.num_machines() * config.words_per_machine >= config.global_memory_words()

    def test_machine_of_is_stable_and_in_range(self):
        config = MPCConfig(num_vertices=500, num_edges=1000, delta=0.5)
        machines = config.num_machines()
        for key in range(200):
            m = config.machine_of(key)
            assert 0 <= m < machines
            assert m == config.machine_of(key)

    def test_machine_of_spreads_keys(self):
        config = MPCConfig(num_vertices=5000, num_edges=20000, delta=0.5)
        machines = {config.machine_of(key) for key in range(1000)}
        assert len(machines) > 1

    def test_for_graph_constructor(self):
        graph = generators.union_of_random_forests(200, arboricity=2, seed=0)
        config = MPCConfig.for_graph(graph, delta=0.4)
        assert config.num_vertices == 200
        assert config.num_edges == graph.num_edges
        assert config.delta == 0.4

    def test_log_helpers(self):
        config = MPCConfig(num_vertices=2, num_edges=0)
        assert config.log_n >= 1.0
        assert config.log_log_n >= 1.0
