"""Tests for RoundStats bookkeeping."""

from __future__ import annotations

import pytest

from repro.mpc.metrics import RoundStats


class TestRoundStats:
    def test_record_and_counters(self):
        stats = RoundStats()
        stats.record_round("a", words_sent=10, max_machine_sent=5, max_machine_received=7)
        stats.record_round("a", words_sent=2, max_machine_sent=2, max_machine_received=2)
        stats.record_round("b", words_sent=0, max_machine_sent=0, max_machine_received=0)
        assert stats.num_rounds == 3
        assert stats.total_words_sent == 12
        assert stats.max_round_volume == 10
        assert stats.rounds_by_label == {"a": 2, "b": 1}

    def test_observe_memory_tracks_peaks(self):
        stats = RoundStats()
        stats.observe_memory(5, 100)
        stats.observe_memory(3, 200)
        assert stats.peak_machine_memory_words == 5
        assert stats.peak_global_memory_words == 200

    def test_merge_concatenates_and_maxes(self):
        a = RoundStats()
        a.record_round("x", 1, 1, 1)
        a.observe_memory(10, 50)
        b = RoundStats()
        b.record_round("y", 2, 2, 2)
        b.record_round("y", 3, 3, 3)
        b.observe_memory(4, 80)
        merged = a.merge(b)
        assert merged.num_rounds == 3
        assert merged.rounds[2].index == 2
        assert merged.rounds_by_label == {"x": 1, "y": 2}
        assert merged.peak_machine_memory_words == 10
        assert merged.peak_global_memory_words == 80

    def test_summary_keys(self):
        stats = RoundStats()
        stats.record_round("a", 1, 1, 1)
        summary = stats.summary()
        assert set(summary) == {
            "rounds",
            "total_words_sent",
            "max_round_volume",
            "peak_machine_memory_words",
            "peak_global_memory_words",
        }

    def test_record_round_returns_indexed_record(self):
        stats = RoundStats()
        first = stats.record_round("setup", 4, 2, 3)
        second = stats.record_round("setup", 6, 6, 1)
        assert (first.index, second.index) == (0, 1)
        assert first.label == "setup"
        assert second.words_sent == 6
        assert second.max_machine_sent == 6
        assert second.max_machine_received == 1

    def test_summary_values_reflect_records(self):
        stats = RoundStats()
        stats.record_round("a", 10, 5, 7)
        stats.record_round("b", 3, 3, 3)
        stats.observe_memory(12, 80)
        summary = stats.summary()
        assert summary["rounds"] == 2.0
        assert summary["total_words_sent"] == 13.0
        assert summary["max_round_volume"] == 10.0
        assert summary["peak_machine_memory_words"] == 12.0
        assert summary["peak_global_memory_words"] == 80.0

    def test_empty_stats_edge_cases(self):
        stats = RoundStats()
        assert stats.num_rounds == 0
        assert stats.total_words_sent == 0
        assert stats.max_round_volume == 0
        assert stats.summary()["rounds"] == 0.0

    def test_merge_is_non_destructive(self):
        a = RoundStats()
        a.record_round("x", 1, 1, 1)
        b = RoundStats()
        b.record_round("y", 2, 2, 2)
        merged = a.merge(b)
        merged.record_round("z", 3, 3, 3)
        assert a.num_rounds == 1
        assert b.num_rounds == 1
        assert a.rounds_by_label == {"x": 1}
        assert merged.num_rounds == 3


class TestEmptyParallelFolds:
    """ISSUE 5 satellite: budget-exhausted scheduler ticks fold *empty*
    supersteps — zero rounds charged, never a crash or a spurious round."""

    def test_fold_with_no_branches_is_a_no_op(self):
        stats = RoundStats()
        stats.record_round("base", 1, 1, 1)
        stats.observe_memory(5, 50)
        assert stats.merge_parallel([]) == 0
        assert stats.merge_parallel([None, None]) == 0
        assert stats.num_rounds == 1
        assert stats.peak_machine_memory_words == 5
        assert stats.peak_global_memory_words == 50

    def test_fold_of_all_empty_deltas_charges_zero_but_observes_memory(self):
        stats = RoundStats()
        idle_a, idle_b = RoundStats(), RoundStats()
        idle_a.observe_memory(7, 70)
        idle_b.observe_memory(3, 30)
        assert stats.merge_parallel([idle_a, idle_b]) == 0
        assert stats.num_rounds == 0
        assert stats.rounds_by_label == {}
        # Co-residency still observed: idle tenants occupy the fleet.
        assert stats.peak_machine_memory_words == 10
        assert stats.peak_global_memory_words == 100

    def test_since_at_the_head_is_an_empty_delta_carrying_peaks(self):
        stats = RoundStats()
        stats.record_round("a", 4, 2, 2)
        stats.observe_memory(9, 90)
        delta = stats.since(stats.num_rounds)
        assert delta.num_rounds == 0
        assert delta.peak_machine_memory_words == 9
        assert delta.peak_global_memory_words == 90

    def test_since_beyond_the_head_raises(self):
        stats = RoundStats()
        stats.record_round("a", 1, 1, 1)
        with pytest.raises(ValueError, match="beyond the ledger head"):
            stats.since(2)
        with pytest.raises(ValueError, match="non-negative"):
            stats.since(-1)
