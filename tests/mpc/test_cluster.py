"""Tests for the MPC cluster simulator."""

from __future__ import annotations

import pytest

from repro.errors import (
    CommunicationLimitExceeded,
    GlobalMemoryExceeded,
    QuotaExceededError,
    SimulationError,
)
from repro.graph import generators
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


def make_cluster(n=256, m=512, **kwargs) -> MPCCluster:
    return MPCCluster(MPCConfig(num_vertices=n, num_edges=m, delta=0.5), **kwargs)


class TestRounds:
    def test_charge_rounds(self):
        cluster = make_cluster()
        cluster.charge_rounds(3, label="setup")
        assert cluster.stats.num_rounds == 3
        assert cluster.stats.rounds_by_label["setup"] == 3
        with pytest.raises(SimulationError):
            cluster.charge_rounds(-1, label="bad")

    def test_communication_round_counts_volume(self):
        cluster = make_cluster()
        rounds = cluster.communication_round([(0, 1, 4), (2, 3, 6)], label="test")
        assert rounds == 1
        assert cluster.stats.num_rounds == 1
        assert cluster.stats.total_words_sent == 10

    def test_negative_message_size_rejected(self):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.communication_round([(0, 1, -2)])

    def test_oversized_round_splits(self):
        cluster = make_cluster(n=64, m=64)
        capacity = cluster.words_per_machine
        rounds = cluster.communication_round([(0, 1, capacity * 3)], label="big")
        assert rounds >= 3
        assert cluster.stats.num_rounds == rounds

    def test_oversized_round_raises_when_splitting_disabled(self):
        cluster = make_cluster(n=64, m=64)
        capacity = cluster.words_per_machine
        with pytest.raises(CommunicationLimitExceeded):
            cluster.communication_round(
                [(0, 1, capacity * 3)], label="big", split_oversized=False
            )

    def test_store_tag_keeps_received_payload(self):
        cluster = make_cluster()
        cluster.communication_round([(0, 1, 5)], store_tag="views")
        assert cluster.global_memory_in_use() == 5
        cluster.release_tag_everywhere("views")
        assert cluster.global_memory_in_use() == 0


class TestStorage:
    def test_store_and_release_at_key(self):
        cluster = make_cluster()
        cluster.store_at_key(7, 10, tag="x")
        assert cluster.global_memory_in_use() == 10
        cluster.release_at_key(7, 10, tag="x")
        assert cluster.global_memory_in_use() == 0

    def test_store_spread_divides_evenly(self):
        cluster = make_cluster()
        cluster.store_spread(cluster.num_machines * 3, tag="big")
        peak = max(m.stored_words for m in cluster._machines.values())
        assert peak <= 3 + 1

    def test_store_spread_rejects_negative(self):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.store_spread(-1)

    def test_store_spread_enforces_per_machine_capacity(self):
        """Regression: the even share must be checked against each machine's
        capacity (the docstring always promised it; the code stored with
        enforce=False)."""
        from repro.errors import MemoryLimitExceeded

        cluster = make_cluster()
        oversized = cluster.num_machines * (cluster.words_per_machine + 1)
        with pytest.raises(MemoryLimitExceeded):
            cluster.store_spread(oversized, tag="too-big")

    def test_store_spread_enforcement_respects_enforce_limits_flag(self):
        cluster = make_cluster(enforce_limits=False)
        oversized = cluster.num_machines * (cluster.words_per_machine + 1)
        cluster.store_spread(oversized, tag="measured")  # must not raise
        assert cluster.peak_machine_memory() > cluster.words_per_machine

    def test_global_memory_enforcement_optional(self):
        # enforce_limits=False isolates the global check: with per-machine
        # enforcement on, store_spread would trip MemoryLimitExceeded first.
        cluster = MPCCluster(
            MPCConfig(num_vertices=32, num_edges=32, delta=0.5),
            enforce_limits=False,
            enforce_global_memory=True,
        )
        with pytest.raises(GlobalMemoryExceeded):
            cluster.store_spread(cluster.config.global_memory_words() + 1000)

    def test_peak_memory_tracked(self):
        cluster = make_cluster()
        cluster.store_at_key(1, 7)
        cluster.release_at_key(1, 7)
        assert cluster.stats.peak_global_memory_words >= 7
        assert cluster.peak_machine_memory() >= 7

    def test_machine_id_out_of_range(self):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.machine(cluster.num_machines + 5)


class TestGraphLoading:
    def test_load_graph_accounts_words(self):
        graph = generators.union_of_random_forests(64, arboricity=2, seed=1)
        cluster = MPCCluster(MPCConfig.for_graph(graph))
        cluster.load_graph(graph)
        expected = graph.num_vertices + 2 * graph.num_edges
        assert cluster.global_memory_in_use() == expected

    def test_snapshot_reports_configuration(self):
        cluster = make_cluster()
        cluster.charge_rounds(2, "x")
        snap = cluster.snapshot()
        assert snap["rounds"] == 2.0
        assert snap["num_machines"] == float(cluster.num_machines)
        assert snap["words_per_machine"] == float(cluster.words_per_machine)


class TestSnapshotAccounting:
    """Focused coverage for MPCCluster.snapshot(): round labels, peak-memory
    observation and oversized-split accounting (previously only exercised
    incidentally through the pipelines)."""

    def test_snapshot_tracks_peak_memory_observation(self):
        cluster = make_cluster()
        cluster.store_at_key(3, 40, tag="spike")
        cluster.release_at_key(3, 40, tag="spike")
        cluster.store_at_key(3, 5, tag="steady")
        snap = cluster.snapshot()
        assert snap["peak_machine_memory_words"] == 40.0
        assert snap["peak_global_memory_words"] == 40.0
        assert snap["global_budget_words"] == float(cluster.config.global_memory_words())

    def test_oversized_split_charges_extra_labelled_rounds(self):
        cluster = make_cluster(n=64, m=64)
        capacity = cluster.words_per_machine
        rounds = cluster.communication_round([(0, 1, capacity * 3)], label="bulk")
        labels = cluster.stats.rounds_by_label
        assert labels["bulk"] == 1
        assert labels["bulk:oversized-split"] == rounds - 1
        snap = cluster.snapshot()
        assert snap["rounds"] == float(rounds)
        assert snap["max_round_volume"] == float(capacity * 3)

    def test_round_labels_accumulate_across_sources(self):
        cluster = make_cluster()
        cluster.communication_round([(0, 1, 2)], label="exchange")
        cluster.charge_rounds(3, label="primitive")
        cluster.communication_round([(1, 2, 1)], label="exchange")
        assert cluster.stats.rounds_by_label == {"exchange": 2, "primitive": 3}
        assert cluster.snapshot()["rounds"] == 5.0


class TestQuotaCappedForks:
    """ISSUE 5: quota-aware fork + breach detection on fold."""

    def test_fork_carries_its_quota_and_checks_it(self):
        cluster = make_cluster()
        fork = cluster.fork(memory_quota=100)
        assert fork.memory_quota == 100
        assert cluster.memory_quota is None  # never inherited
        fork.store_spread(80, tag="t")
        fork.check_quota()  # within quota: no-op
        fork.store_spread(30, tag="t")
        with pytest.raises(QuotaExceededError) as excinfo:
            fork.check_quota()
        assert excinfo.value.used_words == 110
        assert excinfo.value.quota_words == 100

    def test_merge_parallel_detects_the_breach_before_folding(self):
        cluster = make_cluster()
        ok = cluster.fork(memory_quota=100)
        ok.store_spread(40, tag="t")
        hog = cluster.fork(memory_quota=100)
        hog.store_spread(140, tag="t")
        rounds_before = cluster.stats.num_rounds
        with pytest.raises(QuotaExceededError):
            cluster.merge_parallel([ok, hog])
        # Nothing half-merged: the breach fires before any fold arithmetic.
        assert cluster.stats.num_rounds == rounds_before
        assert cluster.stats.peak_global_memory_words == 0

    def test_quota_breach_is_about_the_peak_not_the_current_use(self):
        cluster = make_cluster()
        fork = cluster.fork(memory_quota=100)
        fork.store_spread(120, tag="t")
        fork.release_tag_everywhere("t")
        assert fork.global_memory_in_use() == 0
        with pytest.raises(QuotaExceededError):
            fork.check_quota()  # the high-water mark breached, release or not

    def test_uncapped_forks_never_raise(self):
        cluster = make_cluster()
        fork = cluster.fork()
        assert fork.memory_quota is None
        fork.store_spread(10_000, tag="t")
        fork.check_quota()
        cluster.merge_parallel([fork])

    def test_invalid_quota_is_rejected(self):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.fork(memory_quota=0)
