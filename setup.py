"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works in offline
environments where the ``wheel`` package is unavailable.

The core has zero runtime dependencies.  ``pip install .[numpy]`` pulls in
numpy for the vectorized kernel backend (``repro.kernels``) — optional,
byte-identical to the pure-python reference, and auto-falling back to
``pure`` when absent.
"""

from setuptools import setup

setup(
    extras_require={
        "numpy": ["numpy>=1.24"],
    },
)
