#!/usr/bin/env python3
"""Scenario: out-degree budgeting for a web-crawl-style edge store.

A classic use of low-outdegree orientation: store each edge at exactly one of
its endpoints so that every vertex owns O(λ·log log n) edges, which makes
adjacency queries ("are u and v connected?") answerable by probing only the
two endpoints' short owned lists.  On skewed graphs this is dramatically
cheaper than storing adjacency at both endpoints or at the higher-degree one.

The example also demonstrates the large-arboricity branch: a planted dense
community pushes λ far above log n, so the pipeline first applies the random
edge partitioning of Lemma 2.1.

Run with::

    python examples/web_crawl_orientation.py [num_vertices]
"""

from __future__ import annotations

import sys

from repro import orient
from repro.analysis.reporting import Table
from repro.graph import generators
from repro.graph.arboricity import degeneracy


def adjacency_query_cost(orientation, u: int, v: int) -> int:
    """Number of owned-edge probes needed to answer 'is {u, v} an edge?'."""
    return len(orientation.out_neighbors(u)) + len(orientation.out_neighbors(v))


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    print(f"Generating a crawl-like graph with a dense core on {num_vertices} vertices ...")
    graph = generators.planted_dense_subgraph(
        num_vertices,
        community_size=max(num_vertices // 10, 40),
        community_probability=0.4,
        background_probability=4.0 / num_vertices,
        seed=11,
    )
    print(f"  n = {graph.num_vertices}, m = {graph.num_edges}, "
          f"max degree = {graph.max_degree()}, degeneracy = {degeneracy(graph)}")

    print("\nOrienting with Theorem 1.1 (simulated scalable MPC) ...")
    run = orient(graph, seed=0)
    orientation = run.orientation

    worst_query = max(
        adjacency_query_cost(orientation, u, v) for (u, v) in list(graph.edges)[:500]
    )
    table = Table("Edge-store sizing", ["metric", "value"])
    table.add_row(["used Lemma 2.1 edge partitioning", run.used_edge_partitioning])
    table.add_row(["edge-partition parts", run.num_parts])
    table.add_row(["max edges owned by one vertex", run.max_outdegree])
    table.add_row(["max degree (both-endpoint storage)", graph.max_degree()])
    table.add_row(["worst adjacency-query probes (sampled)", worst_query])
    table.add_row(["simulated MPC rounds", run.rounds])
    table.print()

    assert set(orientation.direction.keys()) == set(graph.edges)
    print("Every edge is owned by exactly one endpoint and no vertex owns more than "
          f"{run.max_outdegree} edges.")


if __name__ == "__main__":
    main()
