#!/usr/bin/env python3
"""Scenario: frequency assignment / scheduling on a social-style graph.

Power-law graphs (social networks, web crawls) have a handful of huge hubs, so
Δ+1 coloring wastes an enormous palette even though the graph is globally
sparse (small arboricity).  This example reproduces the paper's motivation:
the density-dependent coloring of Theorem 1.2 uses a palette proportional to
λ·log log n instead of Δ, which matters when colors are a scarce resource
(frequencies, time slots, shards).

Run with::

    python examples/social_network_coloring.py [num_vertices]
"""

from __future__ import annotations

import sys

from repro import color
from repro.analysis.reporting import Table
from repro.baselines.greedy import degeneracy_order_coloring, greedy_delta_coloring
from repro.graph import generators
from repro.graph.arboricity import degeneracy


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    print(f"Generating a Chung-Lu power-law graph on {num_vertices} vertices ...")
    graph = generators.chung_lu_power_law(
        num_vertices, exponent=2.3, average_degree=8.0, seed=7
    )
    print(f"  n = {graph.num_vertices}, m = {graph.num_edges}, "
          f"max degree = {graph.max_degree()}, degeneracy = {degeneracy(graph)}")

    print("\nColoring with Theorem 1.2 (density-dependent, simulated MPC) ...")
    ours = color(graph, seed=0)
    print("Coloring with the Δ-ordered greedy baseline ...")
    delta_baseline = greedy_delta_coloring(graph)
    print("Coloring with the degeneracy-order greedy baseline (centralised) ...")
    degeneracy_baseline = degeneracy_order_coloring(graph)

    table = Table("Palette comparison", ["algorithm", "colors", "model", "rounds"])
    table.add_row(["Theorem 1.2 (this paper)", ours.num_colors, "scalable MPC", ours.rounds])
    table.add_row(["greedy, vertex order", delta_baseline.num_colors(), "centralised", "-"])
    table.add_row(["greedy, degeneracy order", degeneracy_baseline.num_colors(), "centralised", "-"])
    table.add_row(["Δ + 1 worst case", graph.max_degree() + 1, "-", "-"])
    table.print()

    assert ours.coloring.is_proper()
    print("The distributed palette is within a log log n factor of the centralised "
          "degeneracy bound and far below Δ+1.")


if __name__ == "__main__":
    main()
