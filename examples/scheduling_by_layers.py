#!/usr/bin/env python3
"""Scenario: dependency-free task scheduling from an H-partition.

The deterministic part of Theorem 1.1 produces an H-partition: layers
``H_1, ..., H_L`` where every task (vertex) has at most ``d = O(λ log log n)``
conflicting tasks in its own or higher layers, and layer sizes decay
geometrically.  Two classic schedulers fall out of it directly:

* **color-as-time-slot** — the Theorem 1.2 coloring gives a conflict-free
  schedule with O(λ log log n) slots (each color class runs in parallel);
* **layer-as-wave** — processing layers from the top down touches each
  conflict edge only after its higher endpoint finished, so every wave ``i``
  can commit its results with at most ``d`` retries per task.

This example builds both schedules for a conflict graph derived from a deep
hierarchy workload and reports slot counts and wave sizes.

Run with::

    python examples/scheduling_by_layers.py [num_vertices]
"""

from __future__ import annotations

import sys

from repro import color
from repro.analysis.reporting import Table
from repro.core.full_assignment import complete_layer_assignment
from repro.graph import generators
from repro.graph.arboricity import degeneracy


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    print(f"Generating a deep-hierarchy conflict graph on {num_vertices} tasks ...")
    graph = generators.deep_hierarchy(num_vertices, branching=8, extra_forests=2, seed=3)
    lam = degeneracy(graph)
    print(f"  n = {graph.num_vertices}, m = {graph.num_edges}, degeneracy = {lam}")

    print("\nComputing the H-partition (Lemma 3.15) ...")
    run = complete_layer_assignment(graph, k=2 * lam)
    partition = run.to_hpartition()

    print("Computing the conflict-free slot schedule (Theorem 1.2 coloring) ...")
    coloring_run = color(graph, seed=0)

    table = Table("Schedules", ["schedule", "slots/waves", "largest batch", "guarantee"])
    sizes = partition.layer_sizes()
    table.add_row([
        "layer-as-wave",
        partition.num_layers,
        max(sizes),
        f"≤ {partition.max_out_degree()} unfinished conflicts per task",
    ])
    class_sizes = coloring_run.coloring.color_class_sizes()
    table.add_row([
        "color-as-time-slot",
        coloring_run.num_colors,
        max(class_sizes.values()),
        "zero conflicts inside a slot",
    ])
    table.print()

    decay = [round(s / graph.num_vertices, 3) for s in partition.suffix_sizes()[:8]]
    print(f"Layer suffix fractions (geometric decay, Lemma 3.15): {decay}")
    assert coloring_run.coloring.is_proper()


if __name__ == "__main__":
    main()
