#!/usr/bin/env python3
"""Quickstart: orient and color a sparse graph with the paper's algorithms.

Run with::

    python examples/quickstart.py [num_vertices] [arboricity]

The script generates a graph of controlled arboricity (a union of random
spanning forests), runs the Theorem 1.1 orientation and the Theorem 1.2
coloring, and prints the quality/round/memory measurements next to the
theoretical targets.
"""

from __future__ import annotations

import sys

from repro import color, orient
from repro.analysis.reporting import Table
from repro.graph import generators
from repro.graph.arboricity import arboricity_bounds


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    arboricity = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    print(f"Generating a union of {arboricity} random forests on {num_vertices} vertices ...")
    graph = generators.union_of_random_forests(num_vertices, arboricity=arboricity, seed=0)
    bounds = arboricity_bounds(graph, exact_density=False)
    print(f"  n = {graph.num_vertices}, m = {graph.num_edges}, "
          f"max degree = {graph.max_degree()}, λ ∈ [{bounds.lower}, {bounds.upper}]")

    print("\nRunning the Theorem 1.1 orientation (O(λ·log log n) outdegree) ...")
    orientation_run = orient(graph, seed=0)
    print("Running the Theorem 1.2 coloring (O(λ·log log n) colors) ...")
    coloring_run = color(graph, seed=0)

    table = Table(
        "Results",
        ["metric", "value", "context"],
    )
    table.add_row(["max outdegree", orientation_run.max_outdegree,
                   f"lower bound λ ≥ {bounds.lower}, max degree {graph.max_degree()}"])
    table.add_row(["orientation MPC rounds", orientation_run.rounds,
                   "poly(log log n) target"])
    table.add_row(["colors used", coloring_run.num_colors,
                   f"Δ+1 would allow {graph.max_degree() + 1}"])
    table.add_row(["coloring proper", coloring_run.coloring.is_proper(), ""])
    table.add_row(["coloring MPC rounds", coloring_run.rounds, "poly(log log n) target"])
    if orientation_run.cluster is not None:
        snapshot = orientation_run.cluster.snapshot()
        table.add_row(["peak machine memory (words)", snapshot["peak_machine_memory_words"],
                       f"S = {snapshot['words_per_machine']:.0f} words per machine"])
    table.print()


if __name__ == "__main__":
    main()
