#!/usr/bin/env python3
"""Streaming maintenance: keep an O(λ) orientation alive under edge churn.

Run with::

    python examples/streaming_maintenance.py [num_vertices] [num_batches]

The script streams two adversaries through the
:class:`~repro.stream.service.StreamingService`:

1. **uniform churn** — deletions and insertions balance, the density stays
   flat, and the incremental flip path does all the work (no rebuilds);
2. **densifying core** — an adversary keeps densifying a small vertex core
   until the flip search saturates and the service falls back to the full
   Theorem 1.1 pipeline, refreshing its arboricity estimate.

For each batch the per-update maintenance cost is printed; at the end the
maintained orientation is compared against a from-scratch recompute of the
final graph.
"""

from __future__ import annotations

import sys

from repro import orient
from repro.analysis.reporting import Table
from repro.graph.arboricity import arboricity_bounds
from repro.stream.service import StreamingService
from repro.stream.workloads import densifying_core_trace, uniform_churn_trace


def run_trace(title: str, trace) -> None:
    print(f"\n=== {title}: n={trace.initial.num_vertices}, "
          f"initial m={trace.initial.num_edges}, {trace.num_updates} updates ===")
    service = StreamingService(trace.initial, seed=0)
    table = Table(
        title,
        ["batch", "flips", "recolors", "rebuilds", "rounds", "m", "max_outdeg", "colors"],
    )
    for batch in trace.batches:
        report = service.apply(batch)
        table.add_row([
            report.batch_index, report.flips, report.recolors, report.rebuilds,
            report.rounds, report.num_edges, report.max_outdegree, report.num_colors,
        ])
    table.print()
    service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    fresh = orient(snapshot, seed=0)
    print(f"final graph: m={snapshot.num_edges}, λ ∈ [{bounds.lower}, {bounds.upper}]")
    print(f"maintained max outdegree: {service.orientation.max_outdegree()} "
          f"(cap {service.orientation.outdegree_cap})")
    print(f"from-scratch Theorem 1.1 recompute: {fresh.max_outdegree}")
    print(f"maintenance totals: {service.summary.total_flips} flips, "
          f"{service.summary.total_recolors} recolors, "
          f"{service.summary.total_rebuilds} rebuilds, "
          f"{service.cluster.stats.num_rounds} simulated rounds")


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    num_batches = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    run_trace(
        "uniform churn",
        uniform_churn_trace(num_vertices, arboricity=3, num_batches=num_batches,
                            batch_size=200, seed=0),
    )
    run_trace(
        "densifying core",
        densifying_core_trace(num_vertices, core_size=max(16, num_vertices // 16),
                              num_batches=num_batches, batch_size=150, seed=0),
    )


if __name__ == "__main__":
    main()
