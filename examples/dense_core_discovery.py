#!/usr/bin/env python3
"""Scenario: community / dense-core discovery via the coreness decomposition.

The paper's orientation machinery is stated for a single arboricity guess; the
footnote on [GLM19] points out that running the pipeline for every ``(1+ε)^i``
guess in parallel yields a *coreness decomposition*.  That decomposition is
the workhorse of dense-core discovery: the deepest surviving core is a
2-approximation of the densest subgraph, and per-vertex core estimates rank
vertices by local density.

This example plants a dense community inside a sparse background, recovers it
with the guess-in-parallel decomposition, and compares against the exact
(centralised) core numbers and the exact densest subgraph (computed with the
library's own max-flow).

Run with::

    python examples/dense_core_discovery.py [num_vertices]
"""

from __future__ import annotations

import sys

from repro import approximate_coreness, exact_coreness
from repro.analysis.reporting import Table
from repro.core.coreness import densest_subgraph_from_coreness
from repro.graph import generators
from repro.graph.arboricity import densest_subgraph


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    community_size = max(num_vertices // 10, 40)

    print(f"Planting a dense community of {community_size} vertices in a sparse graph "
          f"on {num_vertices} vertices ...")
    graph = generators.planted_dense_subgraph(
        num_vertices,
        community_size=community_size,
        community_probability=0.4,
        background_probability=3.0 / num_vertices,
        seed=23,
    )
    print(f"  n = {graph.num_vertices}, m = {graph.num_edges}")

    print("\nRunning the guess-in-parallel coreness decomposition (simulated MPC) ...")
    result = approximate_coreness(graph, epsilon=0.5)
    core, density = densest_subgraph_from_coreness(graph, result)

    print("Computing the exact references (centralised) ...")
    exact = exact_coreness(graph)
    exact_set, exact_density = densest_subgraph(graph)

    recovered = sum(1 for v in core if v < community_size)
    precision = recovered / max(len(core), 1)
    recall = recovered / community_size

    table = Table("Dense-core discovery", ["metric", "approximate (MPC)", "exact (centralised)"])
    table.add_row(["max core estimate / number", result.max_estimate(), max(exact.values())])
    table.add_row(["densest-core density", round(density, 2), round(exact_density, 2)])
    table.add_row(["community precision", round(precision, 2), "-"])
    table.add_row(["community recall", round(recall, 2), "-"])
    table.add_row(["simulated MPC rounds", result.rounds, "-"])
    table.print()

    print(f"Guess ladder used: {result.guesses}")


if __name__ == "__main__":
    main()
